"""Decision-criteria tests."""

import pytest

from repro.core.decisions import (
    RegionAccuracyDecision,
    ThresholdDecision,
    build_criteria,
)

SEPARABLE = [(0.1, False), (0.2, False), (0.8, True), (0.9, True)]

NON_MONOTONE = (
    [(0.05, True)] * 8 + [(0.05, False)] * 2
    + [(0.45, False)] * 9 + [(0.45, True)] * 1
    + [(0.95, True)] * 9 + [(0.95, False)] * 1
)


class TestThresholdDecision:
    def test_fit_and_decide(self):
        fitted = ThresholdDecision().fit(SEPARABLE)
        assert fitted.criterion_name == "threshold"
        assert fitted.decide(0.85)
        assert not fitted.decide(0.15)
        assert fitted.training_accuracy == 1.0

    def test_link_probability_sides(self):
        fitted = ThresholdDecision().fit(SEPARABLE)
        assert fitted.link_probability(0.9) > 0.5
        assert fitted.link_probability(0.1) < 0.5

    def test_cannot_express_non_monotone(self):
        fitted = ThresholdDecision().fit(NON_MONOTONE)
        # A single threshold must get the low-value links wrong (or the
        # mid-value non-links); it cannot satisfy both.
        low_correct = fitted.decide(0.05) is True
        mid_correct = fitted.decide(0.45) is False
        assert not (low_correct and mid_correct)


class TestRegionAccuracyDecision:
    @pytest.mark.parametrize("method", ["equal_width", "kmeans"])
    def test_fit_and_decide(self, method):
        fitted = RegionAccuracyDecision(method=method, k=10).fit(SEPARABLE)
        assert fitted.criterion_name == method
        assert fitted.decide(0.85)
        assert not fitted.decide(0.15)

    @pytest.mark.parametrize("method", ["equal_width", "kmeans"])
    def test_captures_non_monotone(self, method):
        fitted = RegionAccuracyDecision(method=method, k=10).fit(NON_MONOTONE)
        assert fitted.decide(0.05)
        assert not fitted.decide(0.45)
        assert fitted.decide(0.95)

    def test_region_beats_threshold_on_non_monotone(self):
        threshold = ThresholdDecision().fit(NON_MONOTONE)
        region = RegionAccuracyDecision(method="kmeans", k=10).fit(NON_MONOTONE)
        assert region.training_accuracy > threshold.training_accuracy

    def test_empty_training(self):
        fitted = RegionAccuracyDecision(method="kmeans").fit([])
        assert not fitted.decide(0.9)  # uninformative prior 0.5 is not > 0.5

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown region method"):
            RegionAccuracyDecision(method="what")


class TestBuildCriteria:
    def test_builds_all_three(self):
        criteria = build_criteria(("threshold", "equal_width", "kmeans"), k=8)
        assert [c.name for c in criteria] == ["threshold", "equal_width", "kmeans"]

    def test_region_k_forwarded(self):
        criteria = build_criteria(("equal_width",), k=4)
        fitted = criteria[0].fit(SEPARABLE)
        assert fitted.profile.n_regions == 4

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown decision criterion"):
            build_criteria(("magic",))
