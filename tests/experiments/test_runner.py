"""Experiment runner tests."""

import pytest

from repro.baselines import TrainedBestFunctionBaseline
from repro.core.config import ResolverConfig
from repro.experiments.runner import (
    ExperimentContext,
    RunResult,
    run_baseline,
    run_config,
)
from repro.metrics.report import MetricReport


@pytest.fixture(scope="module")
def context(small_dataset):
    return ExperimentContext.prepare(small_dataset)


class TestExperimentContext:
    def test_prepares_all_blocks(self, context, small_dataset):
        assert set(context.graphs_by_name) == set(small_dataset.query_names())
        assert set(context.features_by_name) == set(small_dataset.query_names())

    def test_graphs_cover_all_functions(self, context):
        for graphs in context.graphs_by_name.values():
            assert set(graphs) == {f"F{i}" for i in range(1, 11)}

    def test_seeds_protocol(self, context):
        seeds = context.seeds(n_runs=5, base_seed=0)
        assert len(seeds) == 5
        assert context.seeds(n_runs=5, base_seed=0) == seeds


class TestRunConfig:
    def test_result_shape(self, context):
        config = ResolverConfig(function_names=("F8",), criteria=("threshold",))
        result = run_config(context, config, seeds=[0, 1], label="f8")
        assert result.label == "f8"
        assert len(result.per_seed_reports) == 2
        assert set(result.names()) == set(context.collection.query_names())

    def test_mean_is_grand_mean(self, context):
        config = ResolverConfig(function_names=("F8",), criteria=("threshold",))
        result = run_config(context, config, seeds=[0, 1])
        manual = []
        for reports in result.per_seed_reports:
            values = [report.fp for report in reports.values()]
            manual.append(sum(values) / len(values))
        assert result.mean().fp == pytest.approx(sum(manual) / len(manual))

    def test_name_mean(self, context):
        config = ResolverConfig(function_names=("F8",), criteria=("threshold",))
        result = run_config(context, config, seeds=[0, 1])
        name = context.collection.query_names()[0]
        per_run = [reports[name].fp for reports in result.per_seed_reports]
        assert result.name_mean(name).fp == pytest.approx(
            sum(per_run) / len(per_run))

    def test_metric_shortcut(self, context):
        config = ResolverConfig(function_names=("F8",), criteria=("threshold",))
        result = run_config(context, config, seeds=[0])
        assert result.metric("fp") == result.mean().fp


class TestRunBaseline:
    def test_same_protocol_shape(self, context):
        result = run_baseline(context, TrainedBestFunctionBaseline(),
                              seeds=[0, 1])
        assert result.label == "trained_best_function"
        assert len(result.per_seed_reports) == 2
        for reports in result.per_seed_reports:
            for report in reports.values():
                assert isinstance(report, MetricReport)


class TestRunResult:
    def test_empty_names(self):
        assert RunResult(label="x").names() == []
