"""Analysis utility tests."""

import pytest

from repro.core.config import ResolverConfig
from repro.experiments.analysis import (
    _pearson,
    difficulty_correlation,
    profile_block,
    profile_collection,
)
from repro.experiments.runner import ExperimentContext, run_config


@pytest.fixture(scope="module")
def context(small_dataset):
    return ExperimentContext.prepare(small_dataset)


class TestProfileBlock:
    def test_structural_stats(self, context):
        profile = profile_block(context, "William Cohen")
        assert profile.label == "Cohen"
        assert profile.n_pages == 30
        assert profile.n_persons >= 2
        assert 0.0 < profile.dominance <= 1.0
        assert 0.0 <= profile.singleton_fraction <= 1.0

    def test_feature_availability_fields(self, context):
        profile = profile_block(context, "William Cohen")
        assert profile.feature_availability["tfidf"] == 1.0

    def test_function_entropy_all_functions(self, context):
        profile = profile_block(context, "William Cohen")
        assert set(profile.function_entropy) == {f"F{i}" for i in range(1, 11)}
        assert all(entropy >= 0.0
                   for entropy in profile.function_entropy.values())


class TestProfileCollection:
    def test_one_profile_per_name(self, context):
        profiles = profile_collection(context)
        assert [p.query_name for p in profiles] == context.collection.query_names()


class TestDifficultyCorrelation:
    def test_returns_value_in_range(self, context):
        result = run_config(context,
                            ResolverConfig(function_names=("F8",),
                                           criteria=("threshold",)),
                            seeds=[0])
        correlation = difficulty_correlation(context, result)
        assert -1.0 <= correlation <= 1.0


class TestPearson:
    def test_perfect_positive(self):
        assert _pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert _pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_input_zero(self):
        assert _pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_too_few_points(self):
        assert _pearson([1.0], [2.0]) == 0.0
