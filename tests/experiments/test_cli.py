"""CLI tests (fast paths only: tiny datasets, single runs)."""

import pytest

from repro.cli import build_parser, main

FAST = ["--pages", "12", "--runs", "1", "--seed", "3"]


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(FAST + ["table3"])
        assert args.command == "table3"
        assert args.pages == 12

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_generate_and_resolve(self, tmp_path, capsys):
        out = tmp_path / "data.json"
        assert main(FAST + ["generate", "--out", str(out)]) == 0
        assert out.exists()
        captured = capsys.readouterr()
        assert "wrote" in captured.out

        assert main(FAST + ["resolve", "--in", str(out)]) == 0
        captured = capsys.readouterr()
        assert "Resolution" in captured.out
        assert "Cohen" in captured.out

    def test_fit_and_predict(self, tmp_path, capsys):
        data = tmp_path / "data.json"
        model = tmp_path / "model.json"
        assert main(FAST + ["generate", "--out", str(data)]) == 0
        capsys.readouterr()

        assert main(FAST + ["fit", "--in", str(data),
                            "--model", str(model)]) == 0
        assert model.exists()
        captured = capsys.readouterr()
        assert "Fitted model" in captured.out
        assert "Cohen" in captured.out

        assert main(FAST + ["predict", "--in", str(data),
                            "--model", str(model)]) == 0
        captured = capsys.readouterr()
        assert "ground truth unused" in captured.out
        assert "Cohen" in captured.out

        assert main(FAST + ["predict", "--in", str(data),
                            "--model", str(model), "--evaluate"]) == 0
        captured = capsys.readouterr()
        assert "mean Fp" in captured.out

    def test_fit_with_workers_keeps_saved_config_serial(self, tmp_path,
                                                        capsys):
        """--workers is a runtime choice; the artifact must not make
        later loaders fan out to a process pool."""
        import json

        data = tmp_path / "data.json"
        model = tmp_path / "model.json"
        assert main(FAST + ["generate", "--out", str(data)]) == 0
        assert main(FAST + ["--workers", "2", "fit", "--in", str(data),
                            "--model", str(model)]) == 0
        payload = json.loads(model.read_text())
        assert payload["config"]["executor"] == "serial"
        assert payload["config"]["workers"] == 1
        captured = capsys.readouterr()
        assert "process" in captured.out  # the fit itself reported the pool

    def test_fit_with_blocker_saves_it_and_drives_predict(self, tmp_path,
                                                          capsys):
        """--blocker changes which pairs exist, so (unlike --backend and
        --workers) it is baked into the artifact and re-drives predict."""
        import json

        data = tmp_path / "data.json"
        model = tmp_path / "model.json"
        assert main(FAST + ["generate", "--out", str(data)]) == 0
        assert main(FAST + ["--blocker", "token", "fit", "--in", str(data),
                            "--model", str(model)]) == 0
        payload = json.loads(model.read_text())
        assert payload["config"]["blocker"] == "token"
        assert all(name.startswith("~block:") for name in payload["blocks"])
        capsys.readouterr()

        assert main(FAST + ["predict", "--in", str(data),
                            "--model", str(model), "--evaluate"]) == 0
        captured = capsys.readouterr()
        assert "mean Fp" in captured.out
        assert "~block:" in captured.out

    def test_generate_scale_jsonl_streams_and_resolves(self, tmp_path,
                                                       capsys):
        out = tmp_path / "scale.jsonl"
        assert main(FAST + ["generate", "--dataset", "scale",
                            "--names", "4", "--collision", "0.5",
                            "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "streamed jsonl" in captured.out
        assert "4 names" in captured.out

        model = tmp_path / "model.json"
        assert main(FAST + ["fit", "--in", str(out),
                            "--model", str(model)]) == 0
        capsys.readouterr()
        assert main(FAST + ["predict", "--in", str(out),
                            "--model", str(model), "--evaluate"]) == 0
        captured = capsys.readouterr()
        assert "mean Fp" in captured.out

    def test_generate_scale_json_materializes(self, tmp_path, capsys):
        import json

        out = tmp_path / "scale.json"
        assert main(FAST + ["generate", "--dataset", "scale",
                            "--names", "3", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["name"] == "scale-3x12"
        assert len(payload["collections"]) == 3

    def test_generate_format_flag_overrides_suffix(self, tmp_path, capsys):
        out = tmp_path / "data.txt"
        assert main(FAST + ["generate", "--format", "jsonl",
                            "--out", str(out)]) == 0
        first_line = out.read_text().splitlines()[0]
        import json

        assert json.loads(first_line)["kind"] == "jsonl-blocks"

    def test_figure1(self, capsys):
        assert main(FAST + ["figure1", "--name", "Cohen"]) == 0
        captured = capsys.readouterr()
        assert "Figure 1" in captured.out

    def test_figure1_unknown_name(self, capsys):
        assert main(FAST + ["figure1", "--name", "Nobody"]) == 2

    def test_analyze(self, capsys):
        assert main(FAST + ["analyze"]) == 0
        captured = capsys.readouterr()
        assert "Dataset profile" in captured.out
        assert "dominance" in captured.out


class TestServe:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        workdir = tmp_path_factory.mktemp("serve-cli")
        data = workdir / "data.json"
        model = workdir / "model.json"
        second = workdir / "model2.json"
        assert main(FAST + ["generate", "--out", str(data)]) == 0
        assert main(FAST + ["fit", "--in", str(data),
                            "--model", str(model)]) == 0
        assert main(["--pages", "12", "--runs", "1", "--seed", "4",
                     "fit", "--in", str(data), "--model", str(second)]) == 0
        return data, model, second

    def test_serial_demo_loop(self, artifacts, capsys):
        data, model, _ = artifacts
        assert main(FAST + ["serve", "--in", str(data),
                            "--model", str(model), "--requests", "6"]) == 0
        captured = capsys.readouterr()
        assert "Served 6 requests" in captured.out
        assert "[session]" in captured.out
        assert "p99" in captured.out

    def test_concurrent_engine_mode(self, artifacts, capsys):
        data, model, _ = artifacts
        assert main(FAST + ["serve", "--in", str(data),
                            "--model", str(model), "--requests", "16",
                            "--threads", "4",
                            "--batch-window", "2"]) == 0
        captured = capsys.readouterr()
        assert "4 closed-loop threads" in captured.out
        assert "Load report (4 threads)" in captured.out
        assert "[engine]" in captured.out
        assert "p99" in captured.out

    def test_hot_swap_mid_stream(self, artifacts, capsys):
        data, model, second = artifacts
        assert main(FAST + ["serve", "--in", str(data),
                            "--model", str(model), "--requests", "12",
                            "--threads", "2",
                            "--swap-model", str(second)]) == 0
        captured = capsys.readouterr()
        assert "hot swap at halfway" in captured.out
        assert "1 swaps" in captured.out

    def test_invalid_threads_rejected(self, artifacts, capsys):
        data, model, _ = artifacts
        assert main(FAST + ["serve", "--in", str(data),
                            "--model", str(model),
                            "--threads", "0"]) == 2
        assert "threads must be >= 1" in capsys.readouterr().err
