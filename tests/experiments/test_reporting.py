"""Reporting helper tests."""

from repro.experiments.figures import RegionAccuracyPoint
from repro.experiments.reporting import (
    format_bar_chart,
    format_region_series,
    format_table,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"],
                            [["alpha", 0.123456], ["b", 1]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "0.1235" in text
        assert "1" in lines[-1]

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatBarChart:
    def test_bars_scale_with_value(self):
        text = format_bar_chart({"low": 0.1, "high": 0.9}, width=10)
        low_line, high_line = text.splitlines()
        assert low_line.count("#") == 1
        assert high_line.count("#") == 9

    def test_values_clamped(self):
        text = format_bar_chart({"over": 1.5}, width=10)
        assert text.count("#") == 10

    def test_title_included(self):
        assert format_bar_chart({}, title="T").splitlines()[0] == "T"


class TestFormatRegionSeries:
    def test_renders_all_points(self):
        points = [
            RegionAccuracyPoint(low=0.0, high=0.5, center=0.25,
                                accuracy=0.3, n_training_pairs=10),
            RegionAccuracyPoint(low=0.5, high=1.0, center=0.75,
                                accuracy=0.8, n_training_pairs=5),
        ]
        text = format_region_series(points, title="Figure 1")
        assert "Figure 1" in text
        assert "[0.000, 0.500)" in text
        assert "0.8000" in text
