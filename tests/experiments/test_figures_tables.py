"""Figure/table builder tests."""

import pytest

from repro.experiments.figures import (
    figure1_series,
    per_function_series,
)
from repro.experiments.runner import ExperimentContext
from repro.experiments.tables import TABLE2_COLUMNS, table2, table3


@pytest.fixture(scope="module")
def context(small_dataset):
    return ExperimentContext.prepare(small_dataset)


class TestFigure1:
    def test_defaults_pick_cohen(self, context):
        points = figure1_series(context, seed=0)
        assert points
        assert points[0].low == 0.0
        assert points[-1].high == 1.0

    def test_accuracy_in_unit_interval(self, context):
        for point in figure1_series(context, function_name="F8", seed=0):
            assert 0.0 <= point.accuracy <= 1.0

    def test_regions_tile_value_space(self, context):
        points = figure1_series(context, function_name="F8", seed=0, k=6)
        for previous, current in zip(points, points[1:]):
            assert previous.high == pytest.approx(current.low)

    def test_training_pairs_sum(self, context):
        points = figure1_series(context, function_name="F8", seed=0)
        block = context.collection.by_name("William Cohen")
        n_pairs = len(block) * (len(block) - 1) // 2
        expected = -(-n_pairs // 10)  # ceil of 10 %
        assert sum(point.n_training_pairs for point in points) == expected

    def test_equal_width_method(self, context):
        points = figure1_series(context, method="equal_width", k=10, seed=0)
        assert len(points) == 10

    def test_accuracy_varies_across_regions(self, context):
        # The paper's S1 claim: region accuracies are far from constant.
        points = figure1_series(context, function_name="F8", seed=0)
        accuracies = [point.accuracy for point in points]
        assert max(accuracies) - min(accuracies) > 0.2


class TestPerFunctionSeries:
    def test_series_keys(self, context):
        series = per_function_series(context, seeds=[0])
        assert set(series) == {f"F{i}" for i in range(1, 11)} | {"combined"}

    def test_all_scores_unit_interval(self, context):
        series = per_function_series(context, seeds=[0])
        for report in series.values():
            assert 0.0 <= report.fp <= 1.0


class TestTable2:
    def test_structure(self, context):
        table = table2({"small": context}, seeds=[0])
        assert table.datasets() == ["small"]
        for metric in ("fp", "f1", "rand"):
            for column in TABLE2_COLUMNS:
                assert 0.0 <= table.get("small", metric, column) <= 1.0


class TestTable3:
    def test_structure(self, context):
        table = table3(context, seeds=[0])
        assert set(table.names()) == {"Cohen", "Cheyer", "Voss"}
        assert "C10" in table.columns
        assert "W" in table.columns
        for name in table.names():
            for column in table.columns:
                assert 0.0 <= table.get(name, column) <= 1.0

    def test_best_function_per_name(self, context):
        table = table3(context, seeds=[0])
        winners = table.best_function_per_name()
        assert set(winners) == set(table.names())
        for winner in winners.values():
            assert winner.startswith("F")
