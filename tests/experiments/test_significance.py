"""Significance-testing tests."""

import pytest

from repro.experiments.runner import RunResult
from repro.experiments.significance import (
    bootstrap_interval,
    compare_strategies,
    paired_differences,
    permutation_test,
)
from repro.metrics.report import MetricReport


def make_report(value):
    return MetricReport(fp=value, f1=value, precision=value, recall=value,
                        rand=value, adjusted_rand=value, purity=value,
                        inverse_purity=value, bcubed_precision=value,
                        bcubed_recall=value, bcubed_f1=value)


def make_result(label, scores_by_name):
    return RunResult(label=label, per_seed_reports=[
        {name: make_report(score) for name, score in scores_by_name.items()}
    ])


class TestPairedDifferences:
    def test_basic(self):
        a = make_result("a", {"X": 0.9, "Y": 0.7})
        b = make_result("b", {"X": 0.8, "Y": 0.75})
        differences = paired_differences(a, b)
        assert differences == pytest.approx([0.1, -0.05])

    def test_name_mismatch(self):
        a = make_result("a", {"X": 0.9})
        b = make_result("b", {"Z": 0.8})
        with pytest.raises(ValueError, match="different names"):
            paired_differences(a, b)


class TestPermutationTest:
    def test_consistent_advantage_significant(self):
        differences = [0.05, 0.08, 0.04, 0.06, 0.07, 0.05, 0.09, 0.06,
                       0.05, 0.04, 0.08, 0.06]
        assert permutation_test(differences, seed=0) < 0.01

    def test_no_signal_not_significant(self):
        differences = [0.05, -0.05, 0.04, -0.04, 0.03, -0.03]
        assert permutation_test(differences, seed=0) > 0.2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            permutation_test([])

    def test_p_value_in_unit_interval(self):
        p = permutation_test([0.1, -0.2, 0.05], n_permutations=500, seed=1)
        assert 0.0 < p <= 1.0

    def test_deterministic(self):
        differences = [0.02, 0.01, -0.01, 0.03]
        assert (permutation_test(differences, seed=7)
                == permutation_test(differences, seed=7))


class TestBootstrapInterval:
    def test_contains_true_mean_for_tight_data(self):
        differences = [0.05] * 10
        low, high = bootstrap_interval(differences, seed=0)
        assert low == pytest.approx(0.05)
        assert high == pytest.approx(0.05)

    def test_interval_ordering(self):
        differences = [0.1, -0.1, 0.2, 0.0, 0.05]
        low, high = bootstrap_interval(differences, n_resamples=2000, seed=2)
        assert low <= high

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_interval([0.1], confidence=1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bootstrap_interval([])


class TestCompareStrategies:
    def test_full_comparison(self):
        a = make_result("C10", {f"N{i}": 0.85 + 0.01 * (i % 3)
                                for i in range(12)})
        b = make_result("I10", {f"N{i}": 0.80 + 0.01 * (i % 3)
                                for i in range(12)})
        comparison = compare_strategies(a, b)
        assert comparison.label_a == "C10"
        assert comparison.mean_difference == pytest.approx(0.05)
        assert comparison.significant
        assert comparison.ci_low <= comparison.mean_difference <= comparison.ci_high
        assert comparison.n_names == 12
