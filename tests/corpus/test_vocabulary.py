"""Vocabulary construction tests."""

from repro.corpus.vocabulary import Vocabulary, build_vocabulary
import random


class TestBuildVocabulary:
    def test_deterministic_for_same_seed(self):
        first = build_vocabulary(seed=3)
        second = build_vocabulary(seed=3)
        assert first.content_words == second.content_words
        assert first.concepts == second.concepts
        assert first.organizations == second.organizations
        assert first.domains == second.domains

    def test_different_seeds_differ(self):
        assert build_vocabulary(seed=1).content_words != build_vocabulary(seed=2).content_words

    def test_sizes_respected(self):
        vocab = build_vocabulary(seed=0, n_content_words=50, n_concepts=10,
                                 n_organizations=5, n_domains=4)
        assert len(vocab.content_words) == 50
        assert len(vocab.concepts) == 10
        assert len(vocab.organizations) == 5
        assert len(vocab.domains) == 4

    def test_all_categories_unique(self):
        vocab = build_vocabulary(seed=5)
        for category in (vocab.content_words, vocab.concepts,
                         vocab.organizations, vocab.first_names,
                         vocab.last_names, vocab.locations, vocab.domains):
            assert len(category) == len(set(category))

    def test_concepts_are_two_word_phrases(self):
        vocab = build_vocabulary(seed=5)
        assert all(len(concept.split()) == 2 for concept in vocab.concepts)

    def test_organizations_capitalized_with_suffix(self):
        vocab = build_vocabulary(seed=5)
        for org in vocab.organizations:
            head, suffix = org.split(" ", 1)
            assert head[0].isupper()
            assert suffix[0].isupper()

    def test_domains_have_tld(self):
        vocab = build_vocabulary(seed=5)
        assert all("." in domain for domain in vocab.domains)

    def test_names_capitalized(self):
        vocab = build_vocabulary(seed=5)
        assert all(name[0].isupper() for name in vocab.first_names)
        assert all(name[0].isupper() for name in vocab.last_names)

    def test_content_words_lowercase(self):
        vocab = build_vocabulary(seed=5)
        assert all(word == word.lower() for word in vocab.content_words)

    def test_enlarging_one_category_keeps_others(self):
        base = build_vocabulary(seed=9, n_concepts=20)
        bigger = build_vocabulary(seed=9, n_concepts=40)
        assert base.content_words == bigger.content_words
        assert base.organizations == bigger.organizations


class TestVocabularyMethods:
    def test_full_name_format(self):
        vocab = build_vocabulary(seed=2)
        rng = random.Random(0)
        name = vocab.full_name(rng)
        first, last = name.split(" ")
        assert first in vocab.first_names
        assert last in vocab.last_names

    def test_full_name_with_fixed_surname(self):
        vocab = build_vocabulary(seed=2)
        rng = random.Random(0)
        name = vocab.full_name(rng, last_name="Cohen")
        assert name.endswith(" Cohen")

    def test_gazetteers_cover_entities(self):
        vocab = build_vocabulary(seed=2)
        gazetteers = vocab.as_gazetteers()
        assert set(gazetteers["organization"]) == set(vocab.organizations)
        assert set(gazetteers["location"]) == set(vocab.locations)

    def test_gazetteers_are_copies(self):
        vocab = build_vocabulary(seed=2)
        gazetteers = vocab.as_gazetteers()
        gazetteers["organization"].append("Fake Org")
        assert "Fake Org" not in vocab.organizations

    def test_empty_vocabulary_constructible(self):
        vocab = Vocabulary()
        assert vocab.content_words == []
        assert vocab.seed == 0
