"""Document model tests."""

import pytest

from repro.corpus.documents import (
    DocumentCollection,
    NameCollection,
    WebPage,
    collection_from_pages,
)


def make_page(doc_id="x/001", query="Jane Roe", person="roe#00",
              url="http://example.org/a/b.html"):
    return WebPage(doc_id=doc_id, query_name=query, url=url,
                   title="t", text="body text", person_id=person)


class TestWebPage:
    def test_domain_extraction(self):
        page = make_page(url="http://sub.example.org/path/x.html")
        assert page.domain == "sub.example.org"

    def test_domain_without_scheme(self):
        page = make_page(url="example.org/path")
        assert page.domain == "example.org"

    def test_domain_without_path(self):
        page = make_page(url="http://example.org")
        assert page.domain == "example.org"

    def test_frozen(self):
        page = make_page()
        with pytest.raises(AttributeError):
            page.url = "http://other.org"


class TestNameCollection:
    def build(self, labels):
        pages = [make_page(doc_id=f"x/{i:03d}", person=p)
                 for i, p in enumerate(labels)]
        return NameCollection(query_name="Jane Roe", pages=pages)

    def test_len_and_iter(self):
        block = self.build(["a", "a", "b"])
        assert len(block) == 3
        assert [p.doc_id for p in block] == ["x/000", "x/001", "x/002"]

    def test_ground_truth(self):
        block = self.build(["a", "b", "a"])
        truth = block.ground_truth()
        assert truth == {"x/000": "a", "x/001": "b", "x/002": "a"}

    def test_ground_truth_rejects_unlabeled(self):
        block = self.build(["a", "b"])
        block.pages.append(make_page(doc_id="x/999", person=None))
        with pytest.raises(ValueError, match="no ground-truth"):
            block.ground_truth()

    def test_true_clusters(self):
        block = self.build(["a", "b", "a", "c"])
        clusters = block.true_clusters()
        assert sorted(sorted(c) for c in clusters) == [
            ["x/000", "x/002"], ["x/001"], ["x/003"]]

    def test_n_persons(self):
        assert self.build(["a", "b", "a", "c"]).n_persons() == 3

    def test_pairs_count(self):
        block = self.build(["a"] * 5)
        assert len(list(block.pairs())) == 10

    def test_pairs_are_unordered_unique(self):
        block = self.build(["a"] * 4)
        seen = set()
        for left, right in block.pairs():
            key = frozenset((left.doc_id, right.doc_id))
            assert key not in seen
            assert left.doc_id != right.doc_id
            seen.add(key)


class TestDocumentCollection:
    def build(self):
        blocks = [
            NameCollection("Jane Roe", [make_page(doc_id="r/0", query="Jane Roe"),
                                        make_page(doc_id="r/1", query="Jane Roe")]),
            NameCollection("John Doe", [make_page(doc_id="d/0", query="John Doe",
                                                  person="doe#00")]),
        ]
        return DocumentCollection(name="test", collections=blocks)

    def test_len_and_names(self):
        collection = self.build()
        assert len(collection) == 2
        assert collection.query_names() == ["Jane Roe", "John Doe"]

    def test_by_name(self):
        collection = self.build()
        assert collection.by_name("John Doe").query_name == "John Doe"

    def test_by_name_missing_raises(self):
        with pytest.raises(KeyError):
            self.build().by_name("Nobody Here")

    def test_by_name_first_match_after_duplicate_creating_replacement(self):
        # Regression: an in-place same-length replacement that *creates*
        # a duplicate of an already-indexed name used to resolve to the
        # later (indexed) occurrence; first-match semantics must hold.
        collection = self.build()
        assert collection.by_name("John Doe").query_name == "John Doe"  # index built
        earlier_doe = NameCollection(
            "John Doe", [make_page(doc_id="d/9", query="John Doe",
                                   person="doe#01")])
        collection.collections[0] = earlier_doe
        assert collection.by_name("John Doe") is earlier_doe
        # ...and the rebuilt index keeps serving the first match.
        assert collection.by_name("John Doe") is earlier_doe

    def test_by_name_first_match_on_duplicates_at_build_time(self):
        collection = self.build()
        duplicate = NameCollection(
            "Jane Roe", [make_page(doc_id="r/9", query="Jane Roe")])
        collection.collections.append(duplicate)
        assert collection.by_name("Jane Roe") is collection.collections[0]

    def test_n_pages_and_all_pages(self):
        collection = self.build()
        assert collection.n_pages() == 3
        assert len(list(collection.all_pages())) == 3

    def test_summary(self):
        summary = self.build().summary()
        assert summary["names"] == 2
        assert summary["pages"] == 3
        assert summary["min_clusters"] == 1

    def test_summary_empty(self):
        summary = DocumentCollection(name="empty").summary()
        assert summary["pages"] == 0
        assert summary["max_clusters"] == 0


class TestCollectionFromPages:
    def test_groups_by_query_name(self):
        pages = [
            make_page(doc_id="a/0", query="A B"),
            make_page(doc_id="b/0", query="B C"),
            make_page(doc_id="a/1", query="A B"),
        ]
        collection = collection_from_pages("grouped", pages)
        assert collection.query_names() == ["A B", "B C"]
        assert collection.by_name("A B").page_ids() == ["a/0", "a/1"]

    def test_empty(self):
        collection = collection_from_pages("none", [])
        assert len(collection) == 0
