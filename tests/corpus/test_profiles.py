"""Person-profile and pool tests."""

import random

from repro.corpus.profiles import NamePools, PersonProfile, sample_profile
from repro.corpus.vocabulary import build_vocabulary


def make_pools(seed=0, n_clusters=5):
    vocab = build_vocabulary(seed=7)
    return NamePools.sample(random.Random(seed), vocab, n_clusters)


class TestNamePools:
    def test_pool_sizes(self):
        pools = make_pools()
        assert len(pools.words) >= 70
        assert len(pools.concepts) >= 11
        assert len(pools.organizations) > 0
        assert len(pools.associates) > 0
        assert len(pools.domains) > 0

    def test_pools_independent_of_cluster_count(self):
        small = make_pools(seed=0, n_clusters=2)
        large = make_pools(seed=0, n_clusters=40)
        assert len(small.organizations) == len(large.organizations)
        assert len(small.domains) == len(large.domains)

    def test_associates_are_full_names(self):
        pools = make_pools()
        assert all(" " in name for name in pools.associates)


class TestSampleProfile:
    def sample(self, seed=0):
        pools = make_pools(seed=seed)
        return sample_profile(random.Random(seed), pools,
                              person_id="roe#00", query_name="Jane Roe")

    def test_shares_query_full_name(self):
        profile = self.sample()
        assert profile.full_name == "Jane Roe"
        assert profile.first_name == "Jane"
        assert profile.last_name == "Roe"

    def test_concept_weights_normalized(self):
        profile = self.sample()
        assert abs(sum(profile.concepts.values()) - 1.0) < 1e-9
        assert all(weight > 0 for weight in profile.concepts.values())

    def test_fields_populated(self):
        profile = self.sample()
        assert profile.organizations
        assert profile.associates
        assert profile.home_domains
        assert profile.topic_words
        assert profile.shared_words

    def test_namesakes_share_pools(self):
        pools = make_pools(seed=1)
        rng = random.Random(1)
        first = sample_profile(rng, pools, "roe#00", "Jane Roe")
        second = sample_profile(rng, pools, "roe#01", "Jane Roe")
        assert set(first.topic_words) <= set(pools.words)
        assert set(second.topic_words) <= set(pools.words)
        assert first.shared_words == second.shared_words
        # Pooled draws overlap with non-trivial probability over many pairs;
        # at minimum they never leave the pool.
        assert set(first.organizations) <= set(pools.organizations)
        assert set(second.organizations) <= set(pools.organizations)


class TestNameVariants:
    def test_variants(self):
        profile = PersonProfile(person_id="x", query_name="Jane Roe",
                                full_name="Jane Roe")
        assert profile.name_variants() == ["Jane Roe", "J. Roe", "Roe"]

    def test_variants_identical_for_namesakes(self):
        first = PersonProfile(person_id="a", query_name="Jane Roe",
                              full_name="Jane Roe")
        second = PersonProfile(person_id="b", query_name="Jane Roe",
                               full_name="Jane Roe")
        assert first.name_variants() == second.name_variants()
