"""Serialization round-trip tests."""

import json

import pytest

from repro.corpus.loaders import (
    iter_blocks_jsonl,
    load_collection,
    read_jsonl_header,
    save_blocks_jsonl,
    save_collection,
)


class TestRoundTrip:
    def test_round_trip_preserves_everything(self, small_dataset, tmp_path):
        path = tmp_path / "dataset.json"
        save_collection(small_dataset, path)
        loaded = load_collection(path)

        assert loaded.name == small_dataset.name
        assert loaded.metadata == small_dataset.metadata
        assert loaded.query_names() == small_dataset.query_names()
        original_pages = list(small_dataset.all_pages())
        loaded_pages = list(loaded.all_pages())
        assert loaded_pages == original_pages

    def test_round_trip_ground_truth(self, small_dataset, tmp_path):
        path = tmp_path / "dataset.json"
        save_collection(small_dataset, path)
        loaded = load_collection(path)
        for block in small_dataset:
            assert (loaded.by_name(block.query_name).ground_truth()
                    == block.ground_truth())

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        with open(path, "w") as handle:
            json.dump({"format_version": 999, "name": "x", "collections": []},
                      handle)
        with pytest.raises(ValueError, match="format version"):
            load_collection(path)

    def test_rejects_missing_version(self, tmp_path):
        path = tmp_path / "bad.json"
        with open(path, "w") as handle:
            json.dump({"name": "x", "collections": []}, handle)
        with pytest.raises(ValueError, match="format version"):
            load_collection(path)

    def test_file_is_valid_json(self, small_dataset, tmp_path):
        path = tmp_path / "dataset.json"
        save_collection(small_dataset, path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["format_version"] == 1
        assert len(payload["collections"]) == len(small_dataset)


class TestJsonlRoundTrip:
    def test_round_trip_preserves_everything(self, small_dataset, tmp_path):
        path = tmp_path / "dataset.jsonl"
        written = save_blocks_jsonl(small_dataset.collections, path,
                                    name=small_dataset.name,
                                    metadata=small_dataset.metadata)
        assert written == len(list(small_dataset.all_pages()))
        loaded = load_collection(path)
        assert loaded.name == small_dataset.name
        assert loaded.metadata == small_dataset.metadata
        assert list(loaded.all_pages()) == list(small_dataset.all_pages())

    def test_streaming_reader_yields_blocks_in_order(self, small_dataset,
                                                     tmp_path):
        path = tmp_path / "dataset.jsonl"
        save_blocks_jsonl(small_dataset.collections, path)
        streamed = list(iter_blocks_jsonl(path))
        assert [block.query_name for block in streamed] == \
            [block.query_name for block in small_dataset.collections]
        assert [block.pages for block in streamed] == \
            [block.pages for block in small_dataset.collections]

    def test_header_round_trips_metadata(self, small_dataset, tmp_path):
        path = tmp_path / "dataset.jsonl"
        save_blocks_jsonl(small_dataset.collections, path, name="named",
                          metadata={"seed": 3})
        header = read_jsonl_header(path)
        assert header["kind"] == "jsonl-blocks"
        assert header["name"] == "named"
        assert header["metadata"] == {"seed": 3}

    def test_writer_consumes_lazily(self, small_dataset, tmp_path):
        """The writer must not materialize the iterable — pull one block
        at a time so generator pipelines stay O(one block)."""
        pulled = []

        def blocks():
            for block in small_dataset.collections:
                pulled.append(block.query_name)
                yield block

        path = tmp_path / "dataset.jsonl"
        save_blocks_jsonl(blocks(), path)
        assert pulled == [b.query_name for b in small_dataset.collections]

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps({"format_version": 999,
                                     "kind": "jsonl-blocks",
                                     "name": "x"}) + "\n")
        with pytest.raises(ValueError, match="format version"):
            load_collection(path)
        with pytest.raises(ValueError, match="format version"):
            list(iter_blocks_jsonl(path))

    def test_rejects_non_jsonl_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        with open(path, "w") as handle:
            json.dump({"format_version": 1, "name": "x", "collections": []},
                      handle)
        with pytest.raises(ValueError, match="block-per-line"):
            read_jsonl_header(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="block-per-line"):
            read_jsonl_header(path)
