"""Serialization round-trip tests."""

import json

import pytest

from repro.corpus.loaders import load_collection, save_collection


class TestRoundTrip:
    def test_round_trip_preserves_everything(self, small_dataset, tmp_path):
        path = tmp_path / "dataset.json"
        save_collection(small_dataset, path)
        loaded = load_collection(path)

        assert loaded.name == small_dataset.name
        assert loaded.metadata == small_dataset.metadata
        assert loaded.query_names() == small_dataset.query_names()
        original_pages = list(small_dataset.all_pages())
        loaded_pages = list(loaded.all_pages())
        assert loaded_pages == original_pages

    def test_round_trip_ground_truth(self, small_dataset, tmp_path):
        path = tmp_path / "dataset.json"
        save_collection(small_dataset, path)
        loaded = load_collection(path)
        for block in small_dataset:
            assert (loaded.by_name(block.query_name).ground_truth()
                    == block.ground_truth())

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        with open(path, "w") as handle:
            json.dump({"format_version": 999, "name": "x", "collections": []},
                      handle)
        with pytest.raises(ValueError, match="format version"):
            load_collection(path)

    def test_rejects_missing_version(self, tmp_path):
        path = tmp_path / "bad.json"
        with open(path, "w") as handle:
            json.dump({"name": "x", "collections": []}, handle)
        with pytest.raises(ValueError, match="format version"):
            load_collection(path)

    def test_file_is_valid_json(self, small_dataset, tmp_path):
        path = tmp_path / "dataset.json"
        save_collection(small_dataset, path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["format_version"] == 1
        assert len(payload["collections"]) == len(small_dataset)
