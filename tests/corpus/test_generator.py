"""Corpus generator tests."""

import random

import pytest

from repro.corpus.generator import (
    CorpusGenerator,
    GeneratorConfig,
    NameTraits,
    _zipf_cluster_sizes,
    with_traits,
)


class TestZipfClusterSizes:
    def test_sums_to_pages(self):
        rng = random.Random(0)
        sizes = _zipf_cluster_sizes(rng, 100, 7, alpha=1.5)
        assert sum(sizes) == 100
        assert len(sizes) == 7

    def test_every_cluster_nonempty(self):
        rng = random.Random(1)
        sizes = _zipf_cluster_sizes(rng, 50, 40, alpha=2.0)
        assert all(size >= 1 for size in sizes)

    def test_too_many_clusters_raises(self):
        rng = random.Random(0)
        with pytest.raises(ValueError, match="cannot split"):
            _zipf_cluster_sizes(rng, 5, 6, alpha=1.0)

    def test_skew_increases_with_alpha(self):
        rng_flat = random.Random(2)
        rng_steep = random.Random(2)
        flat = _zipf_cluster_sizes(rng_flat, 200, 10, alpha=0.5)
        steep = _zipf_cluster_sizes(rng_steep, 200, 10, alpha=3.0)
        assert max(steep) > max(flat)

    def test_exact_split_k_equals_n(self):
        rng = random.Random(3)
        sizes = _zipf_cluster_sizes(rng, 10, 10, alpha=1.0)
        assert sizes == [1] * 10

    def test_exact_split_under_any_alpha(self):
        """k == n leaves no pages to apportion, so alpha is irrelevant."""
        for alpha in (0.0, 0.5, 1.7, 50.0):
            rng = random.Random(4)
            assert _zipf_cluster_sizes(rng, 8, 8, alpha=alpha) == [1] * 8

    def test_alpha_zero_splits_evenly(self):
        """alpha → 0 degenerates to equal weights: when the leftover
        divides evenly, every cluster gets exactly its share."""
        rng = random.Random(5)
        sizes = _zipf_cluster_sizes(rng, 100, 10, alpha=0.0)
        assert sizes == [10] * 10

    def test_large_alpha_concentrates_mass(self):
        """A huge exponent gives one cluster everything beyond the
        per-cluster minimum — without overflow or a zero-size cluster."""
        rng = random.Random(6)
        sizes = _zipf_cluster_sizes(rng, 200, 10, alpha=50.0)
        assert sum(sizes) == 200
        assert sorted(sizes, reverse=True)[0] == 200 - 9
        assert min(sizes) == 1

    def test_leftover_apportionment_sums_exactly(self):
        """Largest-remainder apportionment never drops or invents a page,
        for any (pages, clusters, alpha) combination with fractional
        quotas."""
        for n_pages in (7, 10, 23, 97):
            for n_clusters in (1, 2, 3, 5, 7):
                if n_clusters > n_pages:
                    continue
                for alpha in (0.0, 0.3, 1.0, 1.7, 3.0):
                    rng = random.Random(n_pages * 31 + n_clusters)
                    sizes = _zipf_cluster_sizes(rng, n_pages, n_clusters,
                                                alpha=alpha)
                    assert sum(sizes) == n_pages, (n_pages, n_clusters, alpha)
                    assert len(sizes) == n_clusters
                    assert all(size >= 1 for size in sizes)

    def test_single_cluster_takes_all_pages(self):
        rng = random.Random(7)
        assert _zipf_cluster_sizes(rng, 42, 1, alpha=1.7) == [42]


class TestNameTraits:
    def test_sample_in_bounds(self):
        rng = random.Random(0)
        for _ in range(50):
            traits = NameTraits.sample(rng)
            assert 0.0 <= traits.p_home_domain <= 1.0
            assert 0.0 <= traits.p_missing_orgs <= 1.0
            assert 0.0 <= traits.offtopic_rate <= 0.5
            assert 0.0 <= traits.boilerplate_rate <= 0.5
            assert traits.min_tokens < traits.max_tokens

    def test_sample_fields_within_documented_ranges(self):
        """Every sampled field stays inside the uniform range its draw is
        defined over — the contract downstream probability checks (e.g.
        mention-rate assertions) rely on."""
        ranges = {
            "p_home_domain": (0.3, 0.95),
            "p_missing_orgs": (0.1, 0.6),
            "p_missing_concepts": (0.05, 0.4),
            "concept_noise": (0.0, 0.35),
            "org_noise": (0.0, 0.3),
            "associate_noise": (0.0, 0.3),
            "name_confusion": (0.05, 0.3),
            "shared_word_rate": (0.05, 0.22),
            "noise_word_rate": (0.05, 0.2),
            "boilerplate_rate": (0.02, 0.16),
            "offtopic_rate": (0.0, 0.15),
        }
        rng = random.Random(1)
        for _ in range(200):
            traits = NameTraits.sample(rng)
            for field_name, (low, high) in ranges.items():
                value = getattr(traits, field_name)
                assert low <= value <= high, (field_name, value)
            # sampling never touches the token range defaults
            assert traits.min_tokens == NameTraits.min_tokens
            assert traits.max_tokens == NameTraits.max_tokens

    def test_samples_vary(self):
        rng = random.Random(0)
        first = NameTraits.sample(rng)
        second = NameTraits.sample(rng)
        assert first != second

    def test_with_traits_helper(self):
        config = GeneratorConfig()
        traits = NameTraits(p_home_domain=1.0)
        new_config = with_traits(config, traits)
        assert new_config.fixed_traits == traits
        assert config.fixed_traits is None  # original untouched


class TestCorpusGenerator:
    def test_deterministic(self):
        generator = CorpusGenerator(GeneratorConfig(pages_per_name=15))
        first = generator.generate(["Jane Roe"], seed=5)
        second = CorpusGenerator(GeneratorConfig(pages_per_name=15)).generate(
            ["Jane Roe"], seed=5)
        pages_first = [(p.doc_id, p.url, p.text) for p in first.all_pages()]
        pages_second = [(p.doc_id, p.url, p.text) for p in second.all_pages()]
        assert pages_first == pages_second

    def test_different_seed_different_corpus(self):
        generator = CorpusGenerator(GeneratorConfig(pages_per_name=15))
        first = generator.generate(["Jane Roe"], seed=5)
        second = generator.generate(["Jane Roe"], seed=6)
        texts_first = [p.text for p in first.all_pages()]
        texts_second = [p.text for p in second.all_pages()]
        assert texts_first != texts_second

    def test_pages_per_name(self, tiny_generator):
        collection = tiny_generator.generate(["A One", "B Two"], seed=0)
        assert all(len(block) == 12 for block in collection)

    def test_cluster_counts_respected(self):
        generator = CorpusGenerator(GeneratorConfig(pages_per_name=20))
        collection = generator.generate(
            ["Jane Roe"], seed=1, cluster_counts={"Jane Roe": 4})
        assert collection.by_name("Jane Roe").n_persons() == 4

    def test_all_pages_labeled(self, tiny_generator):
        collection = tiny_generator.generate(["A One"], seed=2)
        assert all(page.person_id is not None for page in collection.all_pages())

    def test_doc_ids_unique(self, tiny_generator):
        collection = tiny_generator.generate(["A One", "B Two"], seed=3)
        ids = [page.doc_id for page in collection.all_pages()]
        assert len(ids) == len(set(ids))

    def test_query_name_propagates(self, tiny_generator):
        collection = tiny_generator.generate(["A One"], seed=4)
        assert all(page.query_name == "A One" for page in collection.all_pages())

    def test_metadata_recorded(self, tiny_generator):
        collection = tiny_generator.generate(["A One"], seed=9)
        assert collection.metadata["seed"] == 9
        assert collection.metadata["vocabulary_seed"] == 7

    def test_urls_well_formed(self, tiny_generator):
        collection = tiny_generator.generate(["A One"], seed=5)
        for page in collection.all_pages():
            assert page.url.startswith("http://")
            assert page.domain

    def test_page_text_mentions_query_name_usually(self, tiny_generator):
        collection = tiny_generator.generate(["A One"], seed=6)
        mentioning = sum(
            1 for page in collection.all_pages()
            if "One" in page.text or "One" in page.title)
        assert mentioning >= len(collection.by_name("A One")) * 0.8

    def test_fixed_traits_applied(self):
        traits = NameTraits(p_home_domain=1.0, p_missing_orgs=1.0)
        config = GeneratorConfig(pages_per_name=10, fixed_traits=traits,
                                 max_clusters=3)
        generator = CorpusGenerator(config)
        collection = generator.generate(["A One"], seed=0)
        # With p_home_domain = 1.0 every page sits on a profile home domain:
        # at most 3 clusters x 3 domains distinct domains can appear.
        domains = {page.domain for page in collection.all_pages()}
        assert len(domains) <= 9

    def test_boilerplate_stable_across_generators(self):
        first = CorpusGenerator(GeneratorConfig())
        second = CorpusGenerator(GeneratorConfig())
        assert first._domain_boilerplate("x.org") == second._domain_boilerplate("x.org")

    def test_boilerplate_differs_per_domain(self):
        generator = CorpusGenerator(GeneratorConfig())
        assert (generator._domain_boilerplate("x.org")
                != generator._domain_boilerplate("y.org"))
