"""Dataset builder tests."""

import pytest

from repro.corpus.datasets import (
    WEPS2_ACL_NAMES,
    WWW05_CLUSTER_COUNTS,
    WWW05_NAMES,
    custom_dataset,
    surname,
    weps2_like,
    www05_like,
)


class TestSurname:
    def test_full_name(self):
        assert surname("William Cohen") == "Cohen"

    def test_single_token(self):
        assert surname("Cohen") == "Cohen"


class TestWww05Like:
    def test_has_twelve_names(self):
        dataset = www05_like(seed=1, pages_per_name=12)
        assert len(dataset) == 12
        assert dataset.query_names() == WWW05_NAMES

    def test_pages_per_name(self):
        dataset = www05_like(seed=1, pages_per_name=20)
        assert all(len(block) == 20 for block in dataset)

    def test_cluster_counts_at_reference_scale(self):
        dataset = www05_like(seed=1, pages_per_name=100,
                             names=["Adam Cheyer", "Lynn Voss"])
        assert dataset.by_name("Adam Cheyer").n_persons() == 2
        assert dataset.by_name("Lynn Voss").n_persons() == 61

    def test_cluster_counts_scale_down(self):
        dataset = www05_like(seed=1, pages_per_name=50, names=["Lynn Voss"])
        expected = round(WWW05_CLUSTER_COUNTS["Voss"] * 0.5)
        assert dataset.by_name("Lynn Voss").n_persons() == expected

    def test_subset_of_names(self):
        dataset = www05_like(seed=1, pages_per_name=10,
                             names=["William Cohen"])
        assert dataset.query_names() == ["William Cohen"]

    def test_deterministic(self):
        first = www05_like(seed=4, pages_per_name=10, names=["Andrew Ng"])
        second = www05_like(seed=4, pages_per_name=10, names=["Andrew Ng"])
        assert ([p.text for p in first.all_pages()]
                == [p.text for p in second.all_pages()])

    def test_metadata_vocabulary_seed(self):
        dataset = www05_like(seed=1, pages_per_name=10, names=["Andrew Ng"])
        assert dataset.metadata["vocabulary_seed"] == 7


class TestWeps2Like:
    def test_has_ten_names(self):
        dataset = weps2_like(seed=2, pages_per_name=12)
        assert len(dataset) == 10
        assert dataset.query_names() == WEPS2_ACL_NAMES

    def test_different_vocabulary_than_www05(self):
        dataset = weps2_like(seed=2, pages_per_name=10, names=["Frank Keller"])
        assert dataset.metadata["vocabulary_seed"] == 11

    def test_dataset_name(self):
        dataset = weps2_like(seed=2, pages_per_name=10, names=["Frank Keller"])
        assert dataset.name == "weps2-like"


class TestCustomDataset:
    def test_arbitrary_names(self):
        dataset = custom_dataset(["Zoe Quill"], seed=0)
        assert dataset.query_names() == ["Zoe Quill"]
        assert dataset.name == "custom"

    def test_cluster_counts_forwarded(self):
        dataset = custom_dataset(["Zoe Quill"], seed=0,
                                 cluster_counts={"Zoe Quill": 3})
        assert dataset.by_name("Zoe Quill").n_persons() == 3

    def test_unknown_count_name_ignored(self):
        # cluster_counts for names not generated must not break anything
        dataset = custom_dataset(["Zoe Quill"], seed=0,
                                 cluster_counts={"Someone Else": 3})
        assert len(dataset) == 1


class TestClusterCountsSanity:
    def test_counts_cover_paper_range(self):
        values = sorted(WWW05_CLUSTER_COUNTS.values())
        assert values[0] == 2
        assert values[-1] == 61

    def test_count_keys_match_names(self):
        assert {surname(name) for name in WWW05_NAMES} == set(WWW05_CLUSTER_COUNTS)

    def test_cluster_count_never_exceeds_pages(self):
        dataset = www05_like(seed=3, pages_per_name=8, names=["Lynn Voss"])
        block = dataset.by_name("Lynn Voss")
        assert block.n_persons() <= len(block)

    def test_more_clusters_than_pages_raises(self):
        from repro.corpus.generator import GeneratorConfig
        with pytest.raises(ValueError, match="cannot split"):
            custom_dataset(["Zoe Quill"], seed=0,
                           config=GeneratorConfig(pages_per_name=5),
                           cluster_counts={"Zoe Quill": 10})
