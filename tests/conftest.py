"""Shared fixtures.

The expensive artifacts (a small generated dataset, its extracted features
and similarity graphs) are session-scoped: similarity values do not depend
on training seeds, so every test can reuse them.
"""

from __future__ import annotations

import pytest

from repro.core.resolver import compute_similarity_graphs
from repro.corpus.datasets import www05_like
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.corpus.vocabulary import build_vocabulary
from repro.extraction.pipeline import ExtractionPipeline
from repro.similarity.functions import default_functions


@pytest.fixture(scope="session")
def vocabulary():
    """A small, fixed vocabulary."""
    return build_vocabulary(seed=7)


@pytest.fixture(scope="session")
def small_dataset():
    """Three names, 30 pages each — fast but structurally realistic."""
    return www05_like(
        seed=11,
        pages_per_name=30,
        names=["William Cohen", "Adam Cheyer", "Lynn Voss"],
    )


@pytest.fixture(scope="session")
def small_block(small_dataset):
    """The Cohen block of the small dataset."""
    return small_dataset.by_name("William Cohen")


@pytest.fixture(scope="session")
def pipeline(small_dataset, vocabulary):
    """Extraction pipeline matching the small dataset's vocabulary."""
    return ExtractionPipeline.from_vocabulary(
        vocabulary, query_names=small_dataset.query_names())


@pytest.fixture(scope="session")
def block_features(pipeline, small_block):
    """Extracted features for the Cohen block."""
    return pipeline.extract_block(small_block)


@pytest.fixture(scope="session")
def block_graphs(small_block, block_features):
    """Weighted similarity graphs (all ten functions) for the Cohen block."""
    return compute_similarity_graphs(
        small_block, block_features, default_functions())


@pytest.fixture(scope="session")
def tiny_generator():
    """A generator with a tiny page budget for structure-level tests."""
    return CorpusGenerator(GeneratorConfig(pages_per_name=12, max_clusters=4))
