"""Union-find and connected-component tests."""

from repro.graph.components import UnionFind, connected_components


class TestUnionFind:
    def test_initial_singletons(self):
        forest = UnionFind(["a", "b"])
        assert not forest.connected("a", "b")

    def test_union_connects(self):
        forest = UnionFind(["a", "b", "c"])
        assert forest.union("a", "b")
        assert forest.connected("a", "b")
        assert not forest.connected("a", "c")

    def test_union_idempotent(self):
        forest = UnionFind(["a", "b"])
        forest.union("a", "b")
        assert not forest.union("a", "b")

    def test_transitivity(self):
        forest = UnionFind(["a", "b", "c"])
        forest.union("a", "b")
        forest.union("b", "c")
        assert forest.connected("a", "c")

    def test_find_registers_unknown(self):
        forest = UnionFind()
        assert forest.find("new") == "new"
        assert len(forest) == 1

    def test_groups(self):
        forest = UnionFind(["a", "b", "c", "d"])
        forest.union("a", "b")
        groups = sorted(sorted(g) for g in forest.groups())
        assert groups == [["a", "b"], ["c"], ["d"]]

    def test_union_by_size_keeps_correctness(self):
        forest = UnionFind(range(100))
        for i in range(99):
            forest.union(i, i + 1)
        assert forest.connected(0, 99)
        assert len(forest.groups()) == 1


class TestConnectedComponents:
    def test_basic(self):
        components = connected_components(
            ["a", "b", "c", "d"], [("a", "b"), ("c", "d")])
        assert sorted(sorted(c) for c in components) == [["a", "b"], ["c", "d"]]

    def test_isolated_nodes_are_singletons(self):
        components = connected_components(["a", "b", "c"], [("a", "b")])
        assert {frozenset(c) for c in components} == {
            frozenset({"a", "b"}), frozenset({"c"})}

    def test_no_edges(self):
        components = connected_components(["a", "b"], [])
        assert len(components) == 2

    def test_empty(self):
        assert connected_components([], []) == []
