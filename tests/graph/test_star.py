"""Star clustering tests."""

from repro.graph.entity_graph import DecisionGraph, WeightedPairGraph
from repro.graph.star import star_cluster
from repro.graph.validation import is_partition


class TestStarCluster:
    def test_hub_and_satellites(self):
        graph = DecisionGraph.from_pairs(
            ["hub", "s1", "s2", "s3", "lone"],
            [("hub", "s1"), ("hub", "s2"), ("hub", "s3")])
        clusters = star_cluster(graph)
        assert {frozenset(c) for c in clusters} == {
            frozenset({"hub", "s1", "s2", "s3"}), frozenset({"lone"})}

    def test_no_chaining(self):
        # a-b-c-d path: transitive closure gives one cluster; star
        # clustering breaks the chain at star boundaries.
        graph = DecisionGraph.from_pairs(
            ["a", "b", "c", "d"], [("a", "b"), ("b", "c"), ("c", "d")])
        clusters = star_cluster(graph)
        assert len(clusters) >= 2
        assert is_partition([set(c) for c in clusters], ["a", "b", "c", "d"])

    def test_empty_graph_singletons(self):
        graph = DecisionGraph(nodes=["a", "b"])
        clusters = star_cluster(graph)
        assert len(clusters) == 2

    def test_partition_property(self):
        nodes = [f"n{i}" for i in range(10)]
        edges = [(nodes[i], nodes[(i * 3 + 1) % 10]) for i in range(9)]
        graph = DecisionGraph.from_pairs(
            nodes, [tuple(sorted(edge)) for edge in edges])
        clusters = star_cluster(graph)
        assert is_partition([set(c) for c in clusters], nodes)

    def test_deterministic(self):
        graph = DecisionGraph.from_pairs(
            ["a", "b", "c", "d"], [("a", "b"), ("b", "c"), ("c", "d")])
        first = star_cluster(graph)
        second = star_cluster(graph)
        assert {frozenset(c) for c in first} == {frozenset(c) for c in second}

    def test_weighted_center_selection(self):
        # "a" and "c" both have degree 2; with weights, "c" has the heavier
        # star and must be picked first, absorbing b and d.
        graph = DecisionGraph.from_pairs(
            ["a", "b", "c", "d"],
            [("a", "b"), ("a", "d"), ("b", "c"), ("c", "d")])
        weights = WeightedPairGraph(nodes=["a", "b", "c", "d"])
        weights.set_weight("a", "b", 0.1)
        weights.set_weight("a", "d", 0.1)
        weights.set_weight("b", "c", 0.9)
        weights.set_weight("c", "d", 0.9)
        clusters = star_cluster(graph, weights=weights)
        by_node = {node: frozenset(c) for c in clusters for node in c}
        assert by_node["c"] == frozenset({"b", "c", "d"})
        assert by_node["a"] == frozenset({"a"})

    def test_clique_single_cluster(self):
        graph = DecisionGraph.from_pairs(
            ["a", "b", "c"], [("a", "b"), ("a", "c"), ("b", "c")])
        clusters = star_cluster(graph)
        assert len(clusters) == 1


class TestStarInResolver:
    def test_star_clusterer_end_to_end(self, small_block, block_graphs):
        from repro.core import EntityResolver, ResolverConfig
        resolver = EntityResolver(ResolverConfig(clusterer="star"))
        result = resolver.resolve_block(small_block, training_seed=0,
                                        graphs=block_graphs)
        assert is_partition([set(c) for c in result.predicted],
                            small_block.page_ids())
