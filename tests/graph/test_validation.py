"""Graph/partition validation tests."""

from repro.graph.entity_graph import DecisionGraph
from repro.graph.validation import (
    graph_from_clusters,
    is_partition,
    is_union_of_cliques,
    missing_clique_edges,
)


class TestIsPartition:
    def test_valid(self):
        assert is_partition([{"a"}, {"b", "c"}], ["a", "b", "c"])

    def test_overlap_invalid(self):
        assert not is_partition([{"a", "b"}, {"b"}], ["a", "b"])

    def test_missing_item_invalid(self):
        assert not is_partition([{"a"}], ["a", "b"])

    def test_extra_item_invalid(self):
        assert not is_partition([{"a"}, {"z"}], ["a"])

    def test_empty_cluster_invalid(self):
        assert not is_partition([set(), {"a"}], ["a"])


class TestCliqueChecks:
    def test_union_of_cliques(self):
        graph = DecisionGraph.from_pairs(
            ["a", "b", "c", "d"], [("a", "b"), ("c", "d")])
        assert is_union_of_cliques(graph)

    def test_open_triangle_not_clique(self):
        graph = DecisionGraph.from_pairs(
            ["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert not is_union_of_cliques(graph)
        assert missing_clique_edges(graph) == {("a", "c")}

    def test_singletons_fine(self):
        graph = DecisionGraph(nodes=["a", "b"])
        assert is_union_of_cliques(graph)

    def test_closing_the_edges_fixes_it(self):
        graph = DecisionGraph.from_pairs(
            ["a", "b", "c"], [("a", "b"), ("b", "c")])
        graph.edges |= missing_clique_edges(graph)
        assert is_union_of_cliques(graph)


class TestGraphFromClusters:
    def test_clique_per_cluster(self):
        graph = graph_from_clusters(["a", "b", "c", "d"],
                                    [{"a", "b", "c"}, {"d"}])
        assert graph.n_edges() == 3
        assert is_union_of_cliques(graph)

    def test_round_trip_with_closure(self):
        from repro.graph.transitive import transitive_closure_clusters
        clusters = [{"a", "b"}, {"c"}, {"d", "e", "f"}]
        graph = graph_from_clusters("abcdef", clusters)
        recovered = transitive_closure_clusters(graph)
        assert {frozenset(c) for c in recovered} == {frozenset(c) for c in clusters}
