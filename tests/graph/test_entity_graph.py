"""Entity-graph type tests."""

import pytest

from repro.graph.entity_graph import DecisionGraph, WeightedPairGraph, pair_key


class TestPairKey:
    def test_canonical_order(self):
        assert pair_key("b", "a") == ("a", "b")
        assert pair_key("a", "b") == ("a", "b")

    def test_self_pair_raises(self):
        with pytest.raises(ValueError, match="self-pair"):
            pair_key("a", "a")


class TestWeightedPairGraph:
    def build(self):
        graph = WeightedPairGraph(nodes=["a", "b", "c"])
        graph.set_weight("a", "b", 0.9)
        graph.set_weight("b", "c", 0.2)
        return graph

    def test_weight_lookup_order_insensitive(self):
        graph = self.build()
        assert graph.weight("a", "b") == 0.9
        assert graph.weight("b", "a") == 0.9

    def test_missing_pair_reads_zero(self):
        assert self.build().weight("a", "c") == 0.0

    def test_n_pairs_and_values(self):
        graph = self.build()
        assert graph.n_pairs() == 2
        assert sorted(graph.values()) == [0.2, 0.9]

    def test_is_complete(self):
        graph = self.build()
        assert not graph.is_complete()
        graph.set_weight("a", "c", 0.5)
        assert graph.is_complete()

    def test_from_scores(self):
        graph = WeightedPairGraph.from_scores(
            ["a", "b"], {("a", "b"): 0.7})
        assert graph.weight("a", "b") == 0.7

    def test_pairs_iterates_items(self):
        graph = self.build()
        assert dict(graph.pairs()) == graph.weights


class TestDecisionGraph:
    def build(self):
        graph = DecisionGraph(nodes=["a", "b", "c", "d"])
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        return graph

    def test_has_edge_symmetric(self):
        graph = self.build()
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "a")
        assert not graph.has_edge("a", "c")

    def test_remove_edge(self):
        graph = self.build()
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")
        graph.remove_edge("a", "b")  # idempotent

    def test_degree(self):
        graph = self.build()
        assert graph.degree("b") == 2
        assert graph.degree("d") == 0

    def test_neighbors(self):
        graph = self.build()
        assert graph.neighbors("b") == {"a", "c"}
        assert graph.neighbors("d") == set()

    def test_adjacency_covers_isolated_nodes(self):
        adjacency = self.build().adjacency()
        assert adjacency["d"] == set()
        assert adjacency["a"] == {"b"}

    def test_from_pairs(self):
        graph = DecisionGraph.from_pairs(["a", "b"], [("a", "b")])
        assert graph.n_edges() == 1
