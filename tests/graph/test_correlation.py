"""Correlation clustering tests."""

from repro.graph.correlation import correlation_cluster, objective
from repro.graph.entity_graph import WeightedPairGraph


def graph_from(nodes, probabilities):
    graph = WeightedPairGraph(nodes=list(nodes))
    for (left, right), probability in probabilities.items():
        graph.set_weight(left, right, probability)
    return graph


class TestCorrelationCluster:
    def test_clean_two_clusters(self):
        nodes = ["a1", "a2", "a3", "b1", "b2"]
        probabilities = {}
        for group in (["a1", "a2", "a3"], ["b1", "b2"]):
            for i, left in enumerate(group):
                for right in group[i + 1:]:
                    probabilities[(left, right)] = 0.95
        for left in ["a1", "a2", "a3"]:
            for right in ["b1", "b2"]:
                probabilities[(left, right)] = 0.05
        clusters = correlation_cluster(graph_from(nodes, probabilities), seed=0)
        assert {frozenset(c) for c in clusters} == {
            frozenset({"a1", "a2", "a3"}), frozenset({"b1", "b2"})}

    def test_all_positive_one_cluster(self):
        nodes = ["a", "b", "c"]
        probabilities = {("a", "b"): 0.9, ("a", "c"): 0.9, ("b", "c"): 0.9}
        clusters = correlation_cluster(graph_from(nodes, probabilities), seed=1)
        assert len(clusters) == 1

    def test_all_negative_singletons(self):
        nodes = ["a", "b", "c"]
        probabilities = {("a", "b"): 0.1, ("a", "c"): 0.1, ("b", "c"): 0.1}
        clusters = correlation_cluster(graph_from(nodes, probabilities), seed=1)
        assert len(clusters) == 3

    def test_empty_graph(self):
        assert correlation_cluster(WeightedPairGraph(nodes=[]), seed=0) == []

    def test_partition_property(self):
        nodes = [f"n{i}" for i in range(12)]
        probabilities = {}
        for i, left in enumerate(nodes):
            for right in nodes[i + 1:]:
                probabilities[(left, right)] = (hash((left, right)) % 100) / 100.0
        clusters = correlation_cluster(graph_from(nodes, probabilities), seed=2)
        flattened = sorted(node for cluster in clusters for node in cluster)
        assert flattened == sorted(nodes)

    def test_deterministic_given_seed(self):
        nodes = [f"n{i}" for i in range(10)]
        probabilities = {}
        for i, left in enumerate(nodes):
            for right in nodes[i + 1:]:
                probabilities[(left, right)] = ((i * 7 + 3) % 10) / 10.0
        graph = graph_from(nodes, probabilities)
        first = correlation_cluster(graph, seed=5)
        second = correlation_cluster(graph, seed=5)
        assert {frozenset(c) for c in first} == {frozenset(c) for c in second}

    def test_local_search_improves_on_pivot_noise(self):
        # A noisy planted partition: local search must reach at least the
        # objective of the planted clustering's competitor (all singletons).
        nodes = [f"n{i}" for i in range(8)]
        probabilities = {}
        for i, left in enumerate(nodes):
            for right in nodes[i + 1:]:
                same = (i < 4) == (nodes.index(right) < 4)
                probabilities[(left, right)] = 0.8 if same else 0.2
        graph = graph_from(nodes, probabilities)
        clusters = correlation_cluster(graph, seed=3)
        singletons = [{node} for node in nodes]
        assert objective(graph, clusters) >= objective(graph, singletons)


class TestObjective:
    def test_rewards_intra_positive(self):
        graph = graph_from(["a", "b"], {("a", "b"): 0.9})
        assert objective(graph, [{"a", "b"}]) > objective(graph, [{"a"}, {"b"}])

    def test_penalizes_intra_negative(self):
        graph = graph_from(["a", "b"], {("a", "b"): 0.1})
        assert objective(graph, [{"a", "b"}]) < objective(graph, [{"a"}, {"b"}])
