"""Decision multigraph tests."""

import pytest

from repro.graph.entity_graph import DecisionGraph
from repro.graph.multigraph import DecisionMultiGraph


def layer(nodes, edges, probabilities):
    graph = DecisionGraph.from_pairs(nodes, edges)
    return graph, probabilities


class TestDecisionMultiGraph:
    def build(self):
        nodes = ["a", "b", "c"]
        multigraph = DecisionMultiGraph(nodes=nodes)
        graph1, probs1 = layer(nodes, [("a", "b")],
                               {("a", "b"): 0.9, ("a", "c"): 0.2, ("b", "c"): 0.4})
        graph2, probs2 = layer(nodes, [("a", "b"), ("b", "c")],
                               {("a", "b"): 0.7, ("a", "c"): 0.3, ("b", "c"): 0.8})
        multigraph.add_layer("L1", graph1, probs1)
        multigraph.add_layer("L2", graph2, probs2)
        return multigraph

    def test_n_layers(self):
        assert self.build().n_layers() == 2

    def test_edge_multiplicity(self):
        multigraph = self.build()
        assert multigraph.edge_multiplicity(("a", "b")) == 2
        assert multigraph.edge_multiplicity(("b", "c")) == 1
        assert multigraph.edge_multiplicity(("a", "c")) == 0

    def test_pair_probabilities(self):
        multigraph = self.build()
        entries = dict(multigraph.pair_probabilities(("a", "b")))
        assert entries == {"L1": 0.9, "L2": 0.7}

    def test_all_pairs(self):
        assert self.build().all_pairs() == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_averaged(self):
        combined = self.build().averaged()
        assert combined.weight("a", "b") == pytest.approx(0.8)
        assert combined.weight("a", "c") == pytest.approx(0.25)
        assert combined.weight("b", "c") == pytest.approx(0.6)

    def test_mismatching_nodes_rejected(self):
        multigraph = DecisionMultiGraph(nodes=["a", "b"])
        graph = DecisionGraph(nodes=["a", "z"])
        with pytest.raises(ValueError, match="mismatching nodes"):
            multigraph.add_layer("bad", graph, {})

    def test_averaged_empty(self):
        multigraph = DecisionMultiGraph(nodes=["a", "b"])
        assert multigraph.averaged().n_pairs() == 0
