"""Transitive-closure clustering tests."""

from repro.graph.entity_graph import DecisionGraph
from repro.graph.transitive import transitive_closure_clusters


class TestTransitiveClosure:
    def test_chain_becomes_one_cluster(self):
        graph = DecisionGraph.from_pairs(
            ["a", "b", "c", "d"], [("a", "b"), ("b", "c")])
        clusters = transitive_closure_clusters(graph)
        assert {frozenset(c) for c in clusters} == {
            frozenset({"a", "b", "c"}), frozenset({"d"})}

    def test_no_edges_all_singletons(self):
        graph = DecisionGraph(nodes=["a", "b", "c"])
        clusters = transitive_closure_clusters(graph)
        assert len(clusters) == 3

    def test_clique_stays_together(self):
        graph = DecisionGraph.from_pairs(
            ["a", "b", "c"], [("a", "b"), ("a", "c"), ("b", "c")])
        clusters = transitive_closure_clusters(graph)
        assert len(clusters) == 1

    def test_partition_property(self):
        graph = DecisionGraph.from_pairs(
            ["a", "b", "c", "d", "e"], [("a", "b"), ("d", "e")])
        clusters = transitive_closure_clusters(graph)
        all_nodes = sorted(node for cluster in clusters for node in cluster)
        assert all_nodes == ["a", "b", "c", "d", "e"]
