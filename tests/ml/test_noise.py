"""Label-noise injection tests."""

import pytest

from repro.ml.noise import flip_labels, one_sided_noise

PAIRS = [(("a", "b"), True), (("a", "c"), False), (("a", "d"), True),
         (("b", "c"), False), (("b", "d"), True), (("c", "d"), False)]


class TestFlipLabels:
    def test_zero_fraction_identity(self):
        assert flip_labels(PAIRS, 0.0) == PAIRS

    def test_full_fraction_inverts_everything(self):
        flipped = flip_labels(PAIRS, 1.0)
        assert [label for _, label in flipped] == [
            not label for _, label in PAIRS]

    def test_half_fraction_flips_half(self):
        flipped = flip_labels(PAIRS, 0.5, seed=1)
        n_changed = sum(1 for (_, a), (_, b) in zip(PAIRS, flipped) if a != b)
        assert n_changed == 3

    def test_pairs_unchanged(self):
        flipped = flip_labels(PAIRS, 0.5, seed=1)
        assert [pair for pair, _ in flipped] == [pair for pair, _ in PAIRS]

    def test_deterministic(self):
        assert flip_labels(PAIRS, 0.3, seed=5) == flip_labels(PAIRS, 0.3, seed=5)

    def test_different_seeds_differ(self):
        all_same = all(
            flip_labels(PAIRS, 0.5, seed=s) == flip_labels(PAIRS, 0.5, seed=0)
            for s in range(1, 6))
        assert not all_same

    def test_input_not_mutated(self):
        snapshot = list(PAIRS)
        flip_labels(PAIRS, 1.0)
        assert PAIRS == snapshot

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            flip_labels(PAIRS, 1.5)

    def test_empty(self):
        assert flip_labels([], 0.5) == []


class TestOneSidedNoise:
    def test_only_targets_flipped(self):
        noisy = one_sided_noise(PAIRS, 1.0, target_label=True, seed=0)
        for (pair, original), (_, corrupted) in zip(PAIRS, noisy):
            if original:
                assert not corrupted
            else:
                assert not corrupted  # negatives untouched and stay False

    def test_negatives_preserved_when_flipping_positives(self):
        noisy = one_sided_noise(PAIRS, 1.0, target_label=True, seed=0)
        originals = dict(PAIRS)
        for pair, label in noisy:
            if not originals[pair]:
                assert label is False

    def test_partial_fraction(self):
        noisy = one_sided_noise(PAIRS, 0.5, target_label=False, seed=3)
        flipped = sum(1 for (_, a), (_, b) in zip(PAIRS, noisy) if a != b)
        # 3 negatives; half rounded = 2 flips (round(1.5) banker's = 2).
        assert flipped in (1, 2)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            one_sided_noise(PAIRS, -0.1, target_label=True)
