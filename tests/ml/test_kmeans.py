"""1-D k-means tests."""

import pytest

from repro.ml.kmeans import kmeans_1d


class TestKMeans1D:
    def test_two_well_separated_groups(self):
        values = [0.1, 0.12, 0.11, 0.9, 0.88, 0.91]
        model = kmeans_1d(values, k=2)
        assert model.k == 2
        assert model.centers[0] == pytest.approx(0.11, abs=0.02)
        assert model.centers[1] == pytest.approx(0.896, abs=0.02)

    def test_assign_respects_boundaries(self):
        model = kmeans_1d([0.1, 0.1, 0.9, 0.9], k=2)
        assert model.assign(0.0) == 0
        assert model.assign(0.2) == 0
        assert model.assign(0.8) == 1
        assert model.assign(1.0) == 1

    def test_centers_sorted(self):
        values = [0.5, 0.2, 0.9, 0.1, 0.7, 0.3]
        model = kmeans_1d(values, k=3)
        assert list(model.centers) == sorted(model.centers)

    def test_k_reduced_for_few_distinct_values(self):
        model = kmeans_1d([0.5, 0.5, 0.5, 0.7], k=10)
        assert model.k == 2

    def test_single_value(self):
        model = kmeans_1d([0.4, 0.4], k=3)
        assert model.k == 1
        assert model.assign(0.0) == 0
        assert model.assign(1.0) == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            kmeans_1d([], k=2)

    def test_bad_k_raises(self):
        with pytest.raises(ValueError, match="positive"):
            kmeans_1d([0.1], k=0)

    def test_deterministic(self):
        values = [i / 17 for i in range(17)]
        first = kmeans_1d(values, k=5)
        second = kmeans_1d(list(reversed(values)), k=5)
        assert first.centers == second.centers

    def test_boundaries_are_midpoints(self):
        model = kmeans_1d([0.0, 0.0, 1.0, 1.0], k=2)
        assert model.boundaries == (0.5,)

    def test_assignment_matches_nearest_center(self):
        values = [0.05, 0.1, 0.45, 0.5, 0.55, 0.95, 1.0]
        model = kmeans_1d(values, k=3)
        for value in values:
            assigned = model.assign(value)
            nearest = min(range(model.k),
                          key=lambda i: abs(model.centers[i] - value))
            assert assigned == nearest

    def test_convergence_on_uniform_data(self):
        values = [i / 100 for i in range(101)]
        model = kmeans_1d(values, k=10)
        assert model.k == 10
        assert all(0.0 <= center <= 1.0 for center in model.centers)
