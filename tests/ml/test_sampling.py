"""Training-sample selection tests."""

import pytest

from repro.ml.sampling import (
    all_labeled_pairs,
    sample_training_pairs,
    training_runs,
)


class TestAllLabeledPairs:
    def test_counts_and_labels(self, small_block):
        pairs = all_labeled_pairs(small_block)
        n_pages = len(small_block)
        assert len(pairs) == n_pages * (n_pages - 1) // 2
        truth = small_block.ground_truth()
        for (left, right), label in pairs:
            assert label == (truth[left] == truth[right])

    def test_keys_canonical(self, small_block):
        for (left, right), _ in all_labeled_pairs(small_block):
            assert left < right


class TestSampleTrainingPairs:
    def test_pairs_mode_size(self, small_block):
        total = len(all_labeled_pairs(small_block))
        sample = sample_training_pairs(small_block, fraction=0.1, seed=0)
        assert len(sample) == -(-total // 10)  # ceil

    def test_pairs_mode_subset_of_universe(self, small_block):
        universe = dict(all_labeled_pairs(small_block))
        sample = sample_training_pairs(small_block, fraction=0.2, seed=1)
        for pair, label in sample:
            assert universe[pair] == label

    def test_full_fraction_returns_everything(self, small_block):
        sample = sample_training_pairs(small_block, fraction=1.0, seed=0)
        assert len(sample) == len(all_labeled_pairs(small_block))

    def test_documents_mode(self, small_block):
        sample = sample_training_pairs(small_block, fraction=0.2, seed=0,
                                       mode="documents")
        documents = {doc for pair, _ in sample for doc in pair}
        expected_docs = max(2, -(-len(small_block) // 5))
        assert len(documents) <= expected_docs
        assert len(sample) == len(documents) * (len(documents) - 1) // 2

    def test_different_seeds_differ(self, small_block):
        first = sample_training_pairs(small_block, fraction=0.1, seed=0)
        second = sample_training_pairs(small_block, fraction=0.1, seed=1)
        assert first != second

    def test_same_seed_identical(self, small_block):
        first = sample_training_pairs(small_block, fraction=0.1, seed=42)
        second = sample_training_pairs(small_block, fraction=0.1, seed=42)
        assert first == second

    def test_bad_fraction_raises(self, small_block):
        with pytest.raises(ValueError, match="fraction"):
            sample_training_pairs(small_block, fraction=0.0)
        with pytest.raises(ValueError, match="fraction"):
            sample_training_pairs(small_block, fraction=1.5)

    def test_unknown_mode_raises(self, small_block):
        with pytest.raises(ValueError, match="unknown sampling mode"):
            sample_training_pairs(small_block, fraction=0.1, mode="nope")


class TestTrainingRuns:
    def test_five_runs_default(self):
        assert len(training_runs()) == 5

    def test_deterministic(self):
        assert training_runs(5, base_seed=3) == training_runs(5, base_seed=3)

    def test_distinct_seeds(self):
        seeds = training_runs(10, base_seed=0)
        assert len(set(seeds)) == 10
