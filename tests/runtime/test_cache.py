"""SimilarityCache hit/miss accounting and lifecycle."""

from __future__ import annotations

import pytest

from repro.core.config import ResolverConfig
from repro.core.resolver import EntityResolver
from repro.graph.entity_graph import pair_key
from repro.runtime.batch import batched_similarity_graphs
from repro.runtime.cache import SimilarityCache, block_fingerprint
from repro.similarity.functions import default_functions


class TestAccounting:
    def test_fresh_cache_is_empty_with_zero_counters(self):
        cache = SimilarityCache()
        snapshot = cache.stats()
        assert len(cache) == 0
        assert (snapshot.pair_hits, snapshot.pair_misses) == (0, 0)
        assert (snapshot.feature_hits, snapshot.feature_misses) == (0, 0)
        assert snapshot.hit_rate == 0.0

    def test_put_counts_misses_get_counts_hits_pair_granular(self):
        cache = SimilarityCache()
        fingerprint = ("Alice", ("a", "b", "c"))
        weights = {pair_key("a", "b"): 0.5, pair_key("a", "c"): 0.25,
                   pair_key("b", "c"): 1.0}
        assert cache.get_weights(fingerprint, "F8") is None
        cache.put_weights(fingerprint, "F8", weights)
        assert cache.pair_misses == 3
        assert cache.pair_hits == 0

        served = cache.get_weights(fingerprint, "F8")
        assert served == weights
        assert cache.pair_hits == 3
        assert cache.stats().hit_rate == 0.5

    def test_get_returns_copy_mutation_cannot_corrupt_cache(self):
        cache = SimilarityCache()
        fingerprint = ("Alice", ("a", "b"))
        cache.put_weights(fingerprint, "F8", {pair_key("a", "b"): 0.5})
        served = cache.get_weights(fingerprint, "F8")
        served[pair_key("a", "b")] = 999.0
        assert cache.get_weights(fingerprint, "F8") == {
            pair_key("a", "b"): 0.5}

    def test_unknown_function_is_a_miss_even_for_known_block(self):
        cache = SimilarityCache()
        fingerprint = ("Alice", ("a", "b"))
        cache.put_weights(fingerprint, "F8", {pair_key("a", "b"): 0.5})
        assert cache.get_weights(fingerprint, "F9") is None

    def test_features_memo_counts_hits_and_computes_once(self, small_block,
                                                         pipeline):
        cache = SimilarityCache()
        calls = []

        def compute(block):
            calls.append(block.query_name)
            return pipeline.extract_block(block)

        first = cache.features_for(small_block, compute)
        second = cache.features_for(small_block, compute)
        assert first is second
        assert calls == [small_block.query_name]
        snapshot = cache.stats()
        assert (snapshot.feature_misses, snapshot.feature_hits) == (1, 1)


class TestLifecycle:
    def test_fingerprint_covers_name_page_ids_and_mask(self, small_block):
        fingerprint = block_fingerprint(small_block)
        assert fingerprint == (small_block.query_name,
                               tuple(small_block.page_ids()), None)
        mask = frozenset({("a", "b")})
        masked = block_fingerprint(small_block, mask)
        assert masked == (small_block.query_name,
                          tuple(small_block.page_ids()), mask)
        assert masked != fingerprint

    def test_drop_block_evicts_entries_but_keeps_counters(self, small_block,
                                                          block_features):
        cache = SimilarityCache()
        functions = default_functions()[:2]
        batched_similarity_graphs(small_block, block_features, functions,
                                  cache=cache)
        assert len(cache) == 1
        misses = cache.pair_misses
        assert misses > 0

        cache.drop_block(small_block)
        assert len(cache) == 0
        assert cache.pair_misses == misses
        assert cache.get_weights(block_fingerprint(small_block),
                                 functions[0].name) is None

    def test_clear_evicts_everything_but_keeps_counters(self):
        cache = SimilarityCache()
        cache.put_weights(("Alice", ("a", "b")), "F8",
                          {pair_key("a", "b"): 0.5})
        cache.get_weights(("Alice", ("a", "b")), "F8")
        cache.clear()
        assert len(cache) == 0
        assert (cache.pair_hits, cache.pair_misses) == (1, 1)


class TestModelIntegration:
    @pytest.fixture()
    def fitted_model(self, small_block, pipeline, block_graphs):
        resolver = EntityResolver(ResolverConfig())
        return resolver.fit(small_block, graphs=dict(block_graphs),
                            pipeline=pipeline)

    def test_second_predict_is_served_from_cache(self, fitted_model,
                                                 small_block):
        fitted_model.release_fit_caches()
        first = fitted_model.predict_block(small_block)
        misses_after_first = fitted_model._similarity_cache.pair_misses
        assert misses_after_first > 0

        second = fitted_model.predict_block(small_block)
        cache = fitted_model._similarity_cache
        assert cache.pair_misses == misses_after_first  # nothing recomputed
        assert cache.pair_hits == misses_after_first
        assert first.predicted == second.predicted

    def test_explicit_features_bypass_the_warm_cache(self, fitted_model,
                                                     small_block):
        """Caller-supplied features must take effect even after the block
        was served (the cache is keyed by block content only)."""
        from repro.extraction.features import PageFeatures

        fitted_model.release_fit_caches()
        fitted_model.predict_block(small_block)  # warms the cache
        blank = {doc_id: PageFeatures(doc_id=doc_id)
                 for doc_id in small_block.page_ids()}
        prediction = fitted_model.predict_block(small_block, features=blank)
        # Blank features carry no evidence: every similarity is 0, so no
        # pair links and every page is its own entity — cached weights
        # from the real features would have produced far fewer clusters.
        assert prediction.n_entities() == len(small_block)

    def test_explicit_pipeline_bypasses_the_warm_cache(self, fitted_model,
                                                       small_block, pipeline):
        fitted_model.release_fit_caches()
        fitted_model.predict_block(small_block)
        misses = fitted_model._similarity_cache.pair_misses
        hits = fitted_model._similarity_cache.pair_hits
        fitted_model.predict_block(small_block, pipeline=pipeline)
        cache = fitted_model._similarity_cache
        # The explicit-pipeline call neither read nor wrote the cache.
        assert (cache.pair_misses, cache.pair_hits) == (misses, hits)

    def test_collection_with_explicit_pipeline_skips_warm_model_cache(
            self, small_dataset, pipeline):
        """A pipeline= override on the collection paths must not be
        served features another pipeline put into the model's cache."""
        resolver = EntityResolver(ResolverConfig())
        model = resolver.fit(small_dataset, training_seed=0)
        block = small_dataset.collections[0]
        model.predict_block(block, pipeline=resolver.pipeline_for(
            small_dataset))  # explicit call leaves no cache entries

        class SpyPipeline:
            def __init__(self, inner):
                self.inner = inner
                self.extracted = []

            def extract_block(self, target):
                self.extracted.append(target.query_name)
                return self.inner.extract_block(target)

        # Warm the model cache through the default path, then request a
        # collection pass with an explicit (spy) pipeline: every block,
        # including the warm one, must be extracted through the spy.
        model.predict_block(block)
        spy = SpyPipeline(resolver.pipeline_for(small_dataset))
        model.predict_collection(small_dataset, pipeline=spy)
        assert spy.extracted == small_dataset.query_names()

    def test_cache_stats_is_the_public_snapshot(self, fitted_model,
                                                small_block):
        fitted_model.release_fit_caches()
        fitted_model.predict_block(small_block)
        snapshot = fitted_model.cache_stats()
        assert snapshot.pair_misses > 0
        assert snapshot.n_blocks == 1

    def test_release_fit_caches_drops_similarity_cache_entries(
            self, fitted_model, small_block):
        fitted_model.predict_block(small_block)
        assert len(fitted_model._similarity_cache) > 0

        fitted_model.release_fit_caches()
        assert len(fitted_model._similarity_cache) == 0
        for fitted in fitted_model.blocks.values():
            assert fitted._layer_cache is None

    def test_collection_paths_release_quadratic_state(self, small_dataset):
        resolver = EntityResolver(ResolverConfig())
        model = resolver.fit(small_dataset, training_seed=0)
        model.evaluate_collection(small_dataset)
        assert len(model._similarity_cache) == 0
        for fitted in model.blocks.values():
            assert fitted._layer_cache is None
