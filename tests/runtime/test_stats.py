"""RunStats aggregation and serialization."""

from __future__ import annotations

import json

import pytest

from repro.runtime.stats import (LatencyReservoir, RunStats,
                                 TaskStats, percentile)


class TestRunStats:
    def test_add_task_accumulates(self):
        stats = RunStats(phase="predict", executor="process", workers=4)
        stats.add_task(TaskStats("Alice", seconds=0.5, pairs_scored=10,
                                 cache_hits=0, cache_misses=10))
        stats.add_task(TaskStats("Bob", seconds=0.25, pairs_scored=5,
                                 cache_hits=5, cache_misses=5))
        assert stats.n_blocks == 2
        assert stats.pairs_scored == 15
        assert stats.cache_hits == 5
        assert stats.per_block_seconds == {"Alice": 0.5, "Bob": 0.25}
        assert stats.cache_hit_rate == 0.25

    def test_hit_rate_zero_when_unused(self):
        assert RunStats(phase="fit").cache_hit_rate == 0.0

    def test_merged_sums_counters_and_per_block_times(self):
        fit = RunStats(phase="fit", wall_seconds=1.0, n_blocks=2,
                       pairs_scored=100, cache_hits=0, cache_misses=100,
                       per_block_seconds={"Alice": 0.6, "Bob": 0.4})
        predict = RunStats(phase="predict", wall_seconds=0.5, n_blocks=2,
                           pairs_scored=0, cache_hits=100, cache_misses=0,
                           per_block_seconds={"Alice": 0.3})
        combined = fit.merged(predict, phase="protocol")
        assert combined.phase == "protocol"
        assert combined.wall_seconds == 1.5
        assert combined.pairs_scored == 100
        assert combined.cache_hit_rate == 0.5
        assert combined.per_block_seconds == {
            "Alice": pytest.approx(0.9), "Bob": 0.4}
        # Inputs untouched.
        assert fit.per_block_seconds["Alice"] == 0.6

    def test_to_dict_is_json_serializable_and_complete(self):
        stats = RunStats(phase="prepare", executor="process", workers=4,
                         wall_seconds=2.0, n_blocks=3, pairs_scored=30,
                         cache_hits=10, cache_misses=30,
                         per_block_seconds={"Alice": 1.0})
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["phase"] == "prepare"
        assert payload["cache_hit_rate"] == 0.25
        assert payload["per_block_seconds"] == {"Alice": 1.0}

    def test_summary_mentions_the_essentials(self):
        stats = RunStats(phase="fit", executor="process", workers=2,
                         effective_workers=2,
                         wall_seconds=1.0, n_blocks=5, pairs_scored=50,
                         cache_hits=50, cache_misses=50)
        line = stats.summary()
        assert "[fit]" in line and "process" in line and "50%" in line

    def test_summary_shows_degraded_worker_count(self):
        stats = RunStats(phase="fit", executor="process", workers=4,
                         effective_workers=1)
        assert "workers=4->1" in stats.summary()


class TestWorkerAccounting:
    def test_for_executor_snapshots_pool_accounting(self):
        from repro.runtime.executor import ProcessPoolBlockExecutor

        executor = ProcessPoolBlockExecutor(workers=3, oversubscribe=True)
        stats = RunStats.for_executor("fit", executor)
        assert stats.phase == "fit"
        assert stats.executor == "process"
        assert stats.workers == 3
        assert stats.requested_workers == 3
        assert stats.effective_workers == 3
        assert stats.available_cores >= 1
        assert stats.host_cores >= stats.available_cores
        assert stats.cpuset_limited == (
            stats.available_cores < stats.host_cores)
        assert stats.fork_waves == 0

    def test_for_executor_handles_serial_backends(self):
        from repro.runtime.executor import SerialExecutor

        stats = RunStats.for_executor("prepare", SerialExecutor())
        assert stats.executor == "serial"
        assert stats.effective_workers == 1
        assert stats.fork_waves == 0

    def test_finish_executor_reports_the_delta(self):
        class FakePool:
            name = "process"
            workers = 2
            effective_workers = 2
            fork_waves = 3

        pool = FakePool()
        stats = RunStats.for_executor("fit", pool)
        pool.fork_waves = 4  # this pass forked once
        stats.finish_executor(pool)
        assert stats.fork_waves == 1

    def test_merged_sums_fork_waves(self):
        fit = RunStats(phase="fit", effective_workers=2, fork_waves=1,
                       host_cores=4, available_cores=4)
        predict = RunStats(phase="predict", effective_workers=2,
                           fork_waves=0)
        combined = fit.merged(predict, phase="protocol")
        assert combined.fork_waves == 1
        assert combined.effective_workers == 2
        assert combined.host_cores == 4

    def test_to_dict_includes_accounting_fields(self):
        payload = RunStats(phase="fit", workers=4, effective_workers=2,
                           available_cores=2, host_cores=8,
                           cpuset_limited=True, fork_waves=1).to_dict()
        assert payload["requested_workers"] == 4
        assert payload["effective_workers"] == 2
        assert payload["available_cores"] == 2
        assert payload["host_cores"] == 8
        assert payload["cpuset_limited"] is True
        assert payload["fork_waves"] == 1


class TestPercentile:
    def test_nearest_rank_returns_observed_samples(self):
        samples = [0.001 * k for k in range(1, 101)]
        assert percentile(samples, 50) == pytest.approx(0.050)
        assert percentile(samples, 95) == pytest.approx(0.095)
        assert percentile(samples, 99) == pytest.approx(0.099)
        assert percentile(samples, 100) == pytest.approx(0.100)

    def test_order_insensitive(self):
        shuffled = [0.4, 0.1, 0.3, 0.2]
        assert percentile(shuffled, 50) == 0.2
        assert percentile(shuffled, 100) == 0.4

    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_single_sample_is_every_percentile(self):
        assert percentile([0.7], 1) == 0.7
        assert percentile([0.7], 99) == 0.7


class TestLatencyReservoir:
    def test_exact_below_capacity(self):
        reservoir = LatencyReservoir(capacity=100)
        for ms in range(1, 51):
            reservoir.record(ms / 1000.0)
        assert reservoir.count == 50
        assert reservoir.percentile(50) == pytest.approx(0.025)

    def test_capacity_bounds_memory_not_count(self):
        reservoir = LatencyReservoir(capacity=16)
        for ms in range(1000):
            reservoir.record(ms / 1000.0)
        assert reservoir.count == 1000
        assert len(reservoir._samples) == 16

    def test_identical_streams_report_identical_percentiles(self):
        a, b = LatencyReservoir(capacity=32), LatencyReservoir(capacity=32)
        for ms in range(500):
            a.record(ms / 1000.0)
            b.record(ms / 1000.0)
        for q in (50, 90, 95, 99):
            assert a.percentile(q) == b.percentile(q)

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError, match="capacity"):
            LatencyReservoir(capacity=0)
