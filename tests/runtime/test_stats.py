"""RunStats aggregation and serialization."""

from __future__ import annotations

import json

import pytest

from repro.runtime.stats import (LatencyReservoir, RunStats,
                                 TaskStats, percentile)


class TestRunStats:
    def test_add_task_accumulates(self):
        stats = RunStats(phase="predict", executor="process", workers=4)
        stats.add_task(TaskStats("Alice", seconds=0.5, pairs_scored=10,
                                 cache_hits=0, cache_misses=10))
        stats.add_task(TaskStats("Bob", seconds=0.25, pairs_scored=5,
                                 cache_hits=5, cache_misses=5))
        assert stats.n_blocks == 2
        assert stats.pairs_scored == 15
        assert stats.cache_hits == 5
        assert stats.per_block_seconds == {"Alice": 0.5, "Bob": 0.25}
        assert stats.cache_hit_rate == 0.25

    def test_hit_rate_zero_when_unused(self):
        assert RunStats(phase="fit").cache_hit_rate == 0.0

    def test_merged_sums_counters_and_per_block_times(self):
        fit = RunStats(phase="fit", wall_seconds=1.0, n_blocks=2,
                       pairs_scored=100, cache_hits=0, cache_misses=100,
                       per_block_seconds={"Alice": 0.6, "Bob": 0.4})
        predict = RunStats(phase="predict", wall_seconds=0.5, n_blocks=2,
                           pairs_scored=0, cache_hits=100, cache_misses=0,
                           per_block_seconds={"Alice": 0.3})
        combined = fit.merged(predict, phase="protocol")
        assert combined.phase == "protocol"
        assert combined.wall_seconds == 1.5
        assert combined.pairs_scored == 100
        assert combined.cache_hit_rate == 0.5
        assert combined.per_block_seconds == {
            "Alice": pytest.approx(0.9), "Bob": 0.4}
        # Inputs untouched.
        assert fit.per_block_seconds["Alice"] == 0.6

    def test_to_dict_is_json_serializable_and_complete(self):
        stats = RunStats(phase="prepare", executor="process", workers=4,
                         wall_seconds=2.0, n_blocks=3, pairs_scored=30,
                         cache_hits=10, cache_misses=30,
                         per_block_seconds={"Alice": 1.0})
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["phase"] == "prepare"
        assert payload["cache_hit_rate"] == 0.25
        assert payload["per_block_seconds"] == {"Alice": 1.0}

    def test_summary_mentions_the_essentials(self):
        stats = RunStats(phase="fit", executor="process", workers=2,
                         wall_seconds=1.0, n_blocks=5, pairs_scored=50,
                         cache_hits=50, cache_misses=50)
        line = stats.summary()
        assert "[fit]" in line and "process" in line and "50%" in line


class TestPercentile:
    def test_nearest_rank_returns_observed_samples(self):
        samples = [0.001 * k for k in range(1, 101)]
        assert percentile(samples, 50) == pytest.approx(0.050)
        assert percentile(samples, 95) == pytest.approx(0.095)
        assert percentile(samples, 99) == pytest.approx(0.099)
        assert percentile(samples, 100) == pytest.approx(0.100)

    def test_order_insensitive(self):
        shuffled = [0.4, 0.1, 0.3, 0.2]
        assert percentile(shuffled, 50) == 0.2
        assert percentile(shuffled, 100) == 0.4

    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_single_sample_is_every_percentile(self):
        assert percentile([0.7], 1) == 0.7
        assert percentile([0.7], 99) == 0.7


class TestLatencyReservoir:
    def test_exact_below_capacity(self):
        reservoir = LatencyReservoir(capacity=100)
        for ms in range(1, 51):
            reservoir.record(ms / 1000.0)
        assert reservoir.count == 50
        assert reservoir.percentile(50) == pytest.approx(0.025)

    def test_capacity_bounds_memory_not_count(self):
        reservoir = LatencyReservoir(capacity=16)
        for ms in range(1000):
            reservoir.record(ms / 1000.0)
        assert reservoir.count == 1000
        assert len(reservoir._samples) == 16

    def test_identical_streams_report_identical_percentiles(self):
        a, b = LatencyReservoir(capacity=32), LatencyReservoir(capacity=32)
        for ms in range(500):
            a.record(ms / 1000.0)
            b.record(ms / 1000.0)
        for q in (50, 90, 95, 99):
            assert a.percentile(q) == b.percentile(q)

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError, match="capacity"):
            LatencyReservoir(capacity=0)
