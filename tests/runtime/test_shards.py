"""Shared-memory shard publication and the sharded task dispatch."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.runtime import shards as shards_module
from repro.runtime.executor import ProcessPoolBlockExecutor
from repro.runtime.shards import ShardHandle, ShardStore, load_shard
from repro.runtime.tasks import (
    TASK_KINDS,
    BlockShard,
    ShardedBlockTask,
    run_block_tasks,
    run_sharded_block,
)


def _echo(payload):
    """Module-level task body for the dispatch tests."""
    return ("echo", payload, os.getpid())


def _drain_worker_cache():
    """Detach every cached segment so tests leave no open mappings."""
    while shards_module._ATTACHED:
        shard_id = next(iter(shards_module._ATTACHED))
        shards_module._pop_detach(shard_id)
    shards_module._reap_zombies()


class _PlaneProbe:
    """Minimal payload exposing one plane array via ``_bind_planes``."""

    def __init__(self, spec, array=None):
        self.spec = spec
        self.array = array

    def _bind_planes(self, view, base):
        from repro.runtime import planes

        return _PlaneProbe(self.spec,
                           planes.PlaneBuffer(view, base).array(self.spec))


@pytest.fixture
def echo_kind():
    TASK_KINDS["echo"] = _echo
    yield "echo"
    TASK_KINDS.pop("echo", None)


class TestShardStore:
    def test_same_process_load_is_zero_copy(self):
        payload = {"matrix": list(range(100)), "label": "block-a"}
        with ShardStore() as store:
            handle = store.publish(payload, label="test")
            assert load_shard(handle) is payload

    def test_handle_is_tiny_compared_to_payload(self):
        payload = {"blob": "x" * 100_000}
        with ShardStore() as store:
            handle = store.publish(payload)
            assert len(pickle.dumps(handle)) < 200
            assert handle.nbytes > 100_000

    def test_segment_roundtrips_without_local_registry(self):
        """The worker path: attach the segment and unpickle."""
        payload = {"values": [1.5, 2.5], "name": "roundtrip"}
        with ShardStore() as store:
            handle = store.publish(payload)
            shards_module._LOCAL.pop(handle.shard_id)
            loaded = load_shard(handle)
            assert loaded == payload
            assert loaded is not payload
            _drain_worker_cache()

    def test_file_fallback_roundtrips(self):
        payload = {"via": "file", "data": list(range(50))}
        with ShardStore(prefer_shared_memory=False) as store:
            handle = store.publish(payload)
            assert handle.via == "file"
            assert os.path.exists(handle.location)
            shards_module._LOCAL.pop(handle.shard_id)
            assert load_shard(handle) == payload
            _drain_worker_cache()
        assert not os.path.exists(handle.location)

    def test_close_unlinks_segments_and_registry(self):
        store = ShardStore()
        handle = store.publish({"gone": True})
        store.close()
        assert handle.shard_id not in shards_module._LOCAL
        with pytest.raises((FileNotFoundError, OSError)):
            load_shard(handle)

    def test_publish_after_close_raises(self):
        store = ShardStore()
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.publish({"late": True})

    def test_close_is_idempotent(self):
        store = ShardStore()
        store.publish({"a": 1})
        store.close()
        store.close()

    def test_worker_cache_evicts_by_byte_budget(self, monkeypatch):
        """Attached segments are evicted oldest-first past the budget."""
        payload = {"blob": "x" * 4096}
        with ShardStore() as store:
            handles = [store.publish(dict(payload, index=index))
                       for index in range(4)]
            budget = handles[0].nbytes * 2
            monkeypatch.setenv("REPRO_SHARD_CACHE_BYTES", str(budget))
            for handle in handles:
                shards_module._LOCAL.pop(handle.shard_id)
            for index, handle in enumerate(handles):
                assert load_shard(handle)["index"] == index
            assert shards_module.attached_cache_bytes() <= budget
            assert len(shards_module._ATTACHED) == 2
            # Oldest evicted, newest kept.
            assert handles[0].shard_id not in shards_module._ATTACHED
            assert handles[3].shard_id in shards_module._ATTACHED
            # Evicted shards re-attach from their segment on demand.
            assert load_shard(handles[0])["index"] == 0
            _drain_worker_cache()

    def test_newest_shard_survives_a_zero_budget(self, monkeypatch):
        """The shard being loaded is never evicted out from under its
        caller, even when the budget cannot hold it."""
        monkeypatch.setenv("REPRO_SHARD_CACHE_BYTES", "0")
        with ShardStore() as store:
            handle = store.publish({"kept": True})
            shards_module._LOCAL.pop(handle.shard_id)
            assert load_shard(handle) == {"kept": True}
            assert list(shards_module._ATTACHED) == [handle.shard_id]
            _drain_worker_cache()

    def test_eviction_with_live_views_defers_to_zombie_list(self,
                                                            monkeypatch):
        """A segment whose planes are still referenced must not unmap."""
        np = pytest.importorskip("numpy")
        from repro.runtime import planes

        writer = planes.PlaneWriter()
        spec = writer.add(np.arange(64, dtype=np.float64))
        monkeypatch.setenv("REPRO_SHARD_CACHE_BYTES", "0")
        with ShardStore() as store:
            handle = store.publish(_PlaneProbe(spec), planes=writer)
            shards_module._LOCAL.pop(handle.shard_id)
            probe = load_shard(handle)
            array = probe.array  # live np.frombuffer view into the segment
            assert array.tolist() == list(range(64))
            # Force eviction of the only cached shard while the view is
            # alive: it must park on the zombie list, not unmap.
            shards_module._pop_detach(handle.shard_id)
            assert shards_module._ZOMBIES
            assert array.tolist() == list(range(64))  # still readable
            del probe, array
            shards_module._reap_zombies()
            assert not shards_module._ZOMBIES

    def test_handle_records_pickled_and_plane_bytes(self):
        np = pytest.importorskip("numpy")
        from repro.runtime import planes

        writer = planes.PlaneWriter()
        writer.add(np.zeros(1000, dtype=np.float64))
        with ShardStore() as store:
            handle = store.publish({"tiny": True}, planes=writer)
            assert handle.plane_bytes >= 8000
            assert handle.pickled_bytes < 100
            assert handle.nbytes >= handle.pickled_bytes + handle.plane_bytes

    def test_local_payload_overrides_same_process_loads(self):
        original = {"original": True}
        skeleton = {"skeleton": True}
        with ShardStore() as store:
            handle = store.publish(skeleton, local_payload=original)
            assert load_shard(handle) is original
            shards_module._LOCAL.pop(handle.shard_id)
            assert load_shard(handle) == skeleton
            _drain_worker_cache()


class TestShardedDispatch:
    def test_run_sharded_block_dispatches_by_kind(self, echo_kind):
        with ShardStore() as store:
            handle = store.publish(
                BlockShard(kind=echo_kind, payloads=("a", "b")))
            assert run_sharded_block(
                ShardedBlockTask(handle=handle, index=1))[:2] == ("echo", "b")

    def test_run_block_tasks_serial_matches_direct(self, echo_kind):
        from repro.runtime.executor import SerialExecutor

        results = run_block_tasks(SerialExecutor(), echo_kind,
                                  ["x", "y", "z"])
        assert [r[:2] for r in results] == [("echo", "x"), ("echo", "y"),
                                            ("echo", "z")]
        assert all(pid == os.getpid() for _, _, pid in results)

    def test_run_block_tasks_parallel_crosses_processes(self, echo_kind):
        with ProcessPoolBlockExecutor(workers=2,
                                      oversubscribe=True) as executor:
            payloads = [f"payload-{index}" for index in range(8)]
            results = run_block_tasks(executor, echo_kind, payloads,
                                      weights=[1] * 8)
            assert [r[1] for r in results] == payloads
            assert os.getpid() not in {pid for _, _, pid in results}

    def test_workers_forked_before_publish_attach_segments(self, echo_kind):
        """The persistent-pool steady state: pool outlives many shards."""
        with ProcessPoolBlockExecutor(workers=2,
                                      oversubscribe=True) as executor:
            first = run_block_tasks(executor, echo_kind, ["a", "b", "c", "d"])
            # Second fan-out publishes a fresh shard; the pool (forked
            # during the first) must attach it via shared memory.
            second = run_block_tasks(executor, echo_kind,
                                     ["e", "f", "g", "h"])
            assert executor.fork_waves == 1
            assert [r[1] for r in first] == ["a", "b", "c", "d"]
            assert [r[1] for r in second] == ["e", "f", "g", "h"]

    def test_single_payload_skips_shard_publication(self, echo_kind):
        with ProcessPoolBlockExecutor(workers=2,
                                      oversubscribe=True) as executor:
            results = run_block_tasks(executor, echo_kind, ["solo"])
            assert results[0][:2] == ("echo", "solo")
            assert results[0][2] == os.getpid()
            assert executor.fork_waves == 0

    def test_handle_dataclass_shape(self):
        handle = ShardHandle(shard_id="s", via="shm", location="loc",
                             nbytes=10)
        assert (handle.shard_id, handle.via) == ("s", "shm")
