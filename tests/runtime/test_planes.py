"""The columnar plane codec: round trips, views, eligibility, fallback."""

from __future__ import annotations

import pickle
from collections import Counter

import pytest

np = pytest.importorskip("numpy")

from repro.extraction.features import PageFeatures
from repro.graph.entity_graph import WeightedPairGraph
from repro.runtime import planes as planes_module
from repro.runtime import shards as shards_module
from repro.runtime.planes import (
    FeaturePlanes,
    GraphPlaneMap,
    PlaneBuffer,
    PlaneEncodeError,
    PlaneFeatureMap,
    PlaneWriter,
    encode_features,
    encode_graphs,
    features_eligible,
    graphs_eligible,
)
from repro.runtime.shards import ShardStore, load_shard


def make_page(index: int) -> PageFeatures:
    """A deterministic page with every feature family populated."""
    return PageFeatures(
        doc_id=f"doc-{index}",
        url=f"http://example.com/{index}",
        most_frequent_name=f"Name {index % 3}",
        closest_name_to_query=f"Close {index % 2}",
        concept_vector={f"c{j}": (j + index) * 0.37
                        for j in range(index % 4 + 1)},
        concept_set=frozenset(f"c{j}" for j in range(index % 4 + 1)),
        organizations=Counter({f"org{j}": j + 1 for j in range(index % 3)}),
        other_persons=Counter({f"person{j}": 1 for j in range(index % 2)}),
        locations=Counter({"metropolis": 2} if index % 2 else {}),
        tfidf={f"t{j}": 0.1 * (j + 1) + index * 0.01
               for j in range(index % 5 + 1)},
        n_tokens=100 + index,
    )


def make_features(count: int = 8) -> dict[str, PageFeatures]:
    return {f"doc-{index}": make_page(index) for index in range(count)}


def roundtrip_features(features):
    """Encode into a raw buffer and decode back, no shard involved."""
    writer = PlaneWriter()
    header = encode_features(features, writer)
    buffer = bytearray(writer.nbytes + 64)
    writer.write_into(memoryview(buffer), 64)
    return PlaneFeatureMap(FeaturePlanes(
        header, PlaneBuffer(memoryview(buffer).toreadonly(), 64)))


def assert_pages_identical(original: PageFeatures, rebuilt: PageFeatures):
    """Field equality *and* dict iteration order — the fold order."""
    assert original.doc_id == rebuilt.doc_id
    assert original.url == rebuilt.url
    assert original.most_frequent_name == rebuilt.most_frequent_name
    assert original.closest_name_to_query == rebuilt.closest_name_to_query
    assert original.concept_vector == rebuilt.concept_vector
    assert list(original.concept_vector) == list(rebuilt.concept_vector)
    assert original.concept_set == rebuilt.concept_set
    assert original.organizations == rebuilt.organizations
    assert original.other_persons == rebuilt.other_persons
    assert original.locations == rebuilt.locations
    assert original.tfidf == rebuilt.tfidf
    assert list(original.tfidf) == list(rebuilt.tfidf)
    assert original.n_tokens == rebuilt.n_tokens


class TestFeatureRoundTrip:
    def test_in_memory_roundtrip_is_bit_identical(self):
        features = make_features()
        rebuilt = roundtrip_features(features)
        assert list(rebuilt) == list(features)
        for doc_id in features:
            assert_pages_identical(features[doc_id], rebuilt[doc_id])

    def test_derived_families_are_precomputed(self):
        writer = PlaneWriter()
        header = encode_features(make_features(), writer)
        names = [name for name, _ in header.families]
        assert "top_tfidf" in names
        assert "entity_context" in names

    def test_plane_map_refuses_pickle(self):
        rebuilt = roundtrip_features(make_features())
        with pytest.raises(TypeError, match="must not be pickled"):
            pickle.dumps(rebuilt)

    @pytest.mark.parametrize("prefer_shm", [True, False])
    def test_roundtrip_through_shard_segment(self, prefer_shm):
        """shm and the file fallback read the identical plane bytes."""
        features = make_features()
        writer = PlaneWriter()
        header = encode_features(features, writer)
        with ShardStore(prefer_shared_memory=prefer_shm) as store:
            handle = store.publish(_FeatureProbe(header), planes=writer)
            if prefer_shm and handle.via != "shm":  # pragma: no cover
                pytest.skip("no shared memory on this host")
            shards_module._LOCAL.pop(handle.shard_id)
            probe = load_shard(handle)
            rebuilt = probe.mapping
            assert isinstance(rebuilt, PlaneFeatureMap)
            for doc_id in features:
                assert_pages_identical(features[doc_id], rebuilt[doc_id])
            del probe, rebuilt
            _drain()


class TestPlaneFamilySelect:
    def test_full_range_select_is_zero_copy(self):
        rebuilt = roundtrip_features(make_features(6))
        family = rebuilt.planes.family("tfidf")
        counts, cols, values = family.select(list(range(6)))
        assert cols is family.cols
        assert values is family.values
        assert counts.tolist() == np.diff(family.indptr).tolist()

    def test_subset_select_gathers_matching_rows(self):
        features = make_features(6)
        rebuilt = roundtrip_features(features)
        family = rebuilt.planes.family("tfidf")
        rows = [4, 1]
        counts, cols, values = family.select(rows)
        vocab = family.vocab()
        cursor = 0
        for out, row in enumerate(rows):
            page = features[f"doc-{row}"]
            span = slice(cursor, cursor + int(counts[out]))
            keys = [vocab[c] for c in cols[span].tolist()]
            assert dict(zip(keys, values[span].tolist())) == page.tfidf
            cursor += int(counts[out])

    def test_empty_select(self):
        rebuilt = roundtrip_features(make_features(4))
        counts, cols, values = rebuilt.planes.family("tfidf").select([])
        assert counts.size == 0 and cols.size == 0 and values.size == 0

    def test_views_are_read_only(self):
        rebuilt = roundtrip_features(make_features(4))
        family = rebuilt.planes.family("concept")
        with pytest.raises(ValueError):
            family.values[0] = 1.0


class TestEligibility:
    def test_plain_feature_dict_is_eligible(self):
        assert features_eligible(make_features())

    def test_rejects_empty_none_and_foreign_types(self):
        assert not features_eligible(None)
        assert not features_eligible({})
        assert not features_eligible({"a": object()})
        assert not features_eligible(roundtrip_features(make_features()))

    def test_rejects_dict_subclasses(self):
        class Custom(dict):
            pass

        assert not features_eligible(Custom(make_features()))

    def test_graph_eligibility(self):
        graph = WeightedPairGraph(nodes=["a", "b"],
                                  weights={("a", "b"): 0.5})
        assert graphs_eligible({"F1": graph})
        assert not graphs_eligible({})
        assert not graphs_eligible(None)
        assert not graphs_eligible({"F1": object()})


class TestEncodeErrors:
    def test_unsortable_vocabulary_raises_encode_error(self):
        features = make_features(2)
        bad = features["doc-1"]
        object.__setattr__(bad, "tfidf", {"x": 1.0, 3: 2.0})
        with pytest.raises(PlaneEncodeError):
            encode_features(features, PlaneWriter())

    def test_non_string_graph_node_raises_encode_error(self):
        graph = WeightedPairGraph(nodes=["a", 3],
                                  weights={("a", 3): 0.5})
        with pytest.raises(PlaneEncodeError):
            encode_graphs({"F1": graph}, PlaneWriter())


class TestGraphRoundTrip:
    def test_graphs_rebuild_in_stored_order(self):
        graphs = {
            "F1": WeightedPairGraph(
                nodes=["a", "b", "c"],
                weights={("a", "c"): 0.5, ("a", "b"): 0.25}),
            "F2": WeightedPairGraph(nodes=["x"], weights={}),
        }
        writer = PlaneWriter()
        header = encode_graphs(graphs, writer)
        buffer = bytearray(max(1, writer.nbytes))
        writer.write_into(memoryview(buffer), 0)
        rebuilt = GraphPlaneMap(
            header, PlaneBuffer(memoryview(buffer).toreadonly(), 0))
        assert list(rebuilt) == ["F1", "F2"]
        for name, graph in graphs.items():
            assert rebuilt[name].nodes == graph.nodes
            assert rebuilt[name].weights == graph.weights
            assert list(rebuilt[name].weights) == list(graph.weights)

    def test_graph_map_refuses_pickle(self):
        graphs = {"F1": WeightedPairGraph(nodes=["a"], weights={})}
        writer = PlaneWriter()
        header = encode_graphs(graphs, writer)
        buffer = bytearray(max(1, writer.nbytes))
        writer.write_into(memoryview(buffer), 0)
        rebuilt = GraphPlaneMap(
            header, PlaneBuffer(memoryview(buffer).toreadonly(), 0))
        with pytest.raises(TypeError, match="must not be pickled"):
            pickle.dumps(rebuilt)


class TestPlaneWriter:
    def test_offsets_are_64_byte_aligned(self):
        writer = PlaneWriter()
        first = writer.add(np.arange(3, dtype=np.int64))
        second = writer.add(np.arange(5, dtype=np.float64))
        assert first.offset % 64 == 0
        assert second.offset % 64 == 0
        assert second.offset >= first.offset + 24

    def test_write_into_respects_base(self):
        writer = PlaneWriter()
        spec = writer.add(np.asarray([1.5, -2.5], dtype=np.float64))
        buffer = bytearray(writer.nbytes + 128)
        writer.write_into(memoryview(buffer), 128)
        view = PlaneBuffer(memoryview(buffer).toreadonly(), 128)
        assert view.array(spec).tolist() == [1.5, -2.5]


class _FeatureProbe:
    """Payload carrying a feature-plane header through a shard."""

    def __init__(self, header, mapping=None):
        self.header = header
        self.mapping = mapping

    def _bind_planes(self, view, base):
        return _FeatureProbe(self.header, PlaneFeatureMap(
            FeaturePlanes(self.header, PlaneBuffer(view, base))))


def _drain():
    while shards_module._ATTACHED:
        shards_module._pop_detach(next(iter(shards_module._ATTACHED)))
    shards_module._reap_zombies()
