"""SimilarityCache accounting under the scoring backends.

The cache counts pair-granular hits and misses regardless of which
backend scored the pairs; the numpy backend's matrix-built weights must
account identically to the scalar sweep's — and a value cached by one
backend must serve the other (bit-identity is what makes that legal).
"""

from __future__ import annotations

import pytest

from repro.core.config import ResolverConfig
from repro.core.resolver import EntityResolver
from repro.corpus.datasets import www05_like
from repro.runtime.batch import batched_similarity_graphs
from repro.runtime.cache import SimilarityCache
from repro.similarity.functions import default_functions

BACKENDS = ("python", "numpy")


@pytest.fixture(scope="module")
def block_and_features():
    collection = www05_like(seed=3, pages_per_name=10,
                            names=["William Cohen"])
    pipeline = EntityResolver(ResolverConfig()).pipeline_for(collection)
    block = collection.collections[0]
    return block, pipeline.extract_block(block)


def n_pairs(block) -> int:
    n = len(block.pages)
    return n * (n - 1) // 2


class TestCacheAccountingPerBackend:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_first_pass_counts_misses_second_hits(self, block_and_features,
                                                  backend):
        block, features = block_and_features
        functions = default_functions()
        expected = n_pairs(block) * len(functions)
        cache = SimilarityCache()
        first = batched_similarity_graphs(block, features, functions,
                                          cache=cache, backend=backend)
        snapshot = cache.stats()
        assert snapshot.pair_misses == expected
        assert snapshot.pair_hits == 0
        second = batched_similarity_graphs(block, features, functions,
                                           cache=cache, backend=backend)
        snapshot = cache.stats()
        assert snapshot.pair_misses == expected
        assert snapshot.pair_hits == expected
        assert snapshot.hit_rate == 0.5
        for name in first:
            assert first[name].weights == second[name].weights

    def test_cache_filled_by_one_backend_serves_the_other(
            self, block_and_features):
        block, features = block_and_features
        functions = default_functions()
        cache = SimilarityCache()
        filled = batched_similarity_graphs(block, features, functions,
                                           cache=cache, backend="numpy")
        served = batched_similarity_graphs(block, features, functions,
                                           cache=cache, backend="python")
        assert cache.stats().pair_hits == n_pairs(block) * len(functions)
        for name in filled:
            assert filled[name].weights == served[name].weights

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_partial_cache_scores_only_pending_functions(
            self, block_and_features, backend):
        block, features = block_and_features
        functions = default_functions()
        cache = SimilarityCache()
        batched_similarity_graphs(block, features, functions[:3],
                                  cache=cache, backend=backend)
        misses_before = cache.stats().pair_misses
        graphs = batched_similarity_graphs(block, features, functions,
                                           cache=cache, backend=backend)
        snapshot = cache.stats()
        assert snapshot.pair_hits == n_pairs(block) * 3
        assert snapshot.pair_misses == misses_before \
            + n_pairs(block) * (len(functions) - 3)
        assert list(graphs) == [function.name for function in functions]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_serving_twice_halves_the_miss_rate(self, backend):
        collection = www05_like(seed=3, pages_per_name=10,
                                names=["William Cohen"])
        resolver = EntityResolver(ResolverConfig(backend=backend))
        block = collection.collections[0]
        model = resolver.fit(collection, training_seed=0)
        model.release_fit_caches()
        model.pipeline = resolver.pipeline_for(collection)
        model.predict_block(block)
        model.predict_block(block)
        assert model.cache_stats().hit_rate == 0.5
