"""Serial and process-pool execution must be bit-identical.

The engine's core guarantee: scheduling is an implementation detail —
fitting, predicting and evaluating through the process pool produces
exactly the serial results at fixed seeds.  Checked across training seeds
(the protocol's randomness) on every surface a caller can observe:
fitted state, predictions, combination probabilities and metric reports.
"""

from __future__ import annotations

import pytest

from repro.core.config import ResolverConfig
from repro.core.resolver import EntityResolver
from repro.experiments.runner import ExperimentContext, run_config
from repro.runtime.executor import ProcessPoolBlockExecutor

SEEDS = [0, 1, 2]


@pytest.fixture(scope="module")
def context(small_dataset):
    return ExperimentContext.prepare(small_dataset)


@pytest.fixture(scope="module")
def parallel():
    # Oversubscribed so a genuine multi-process pool runs even on hosts
    # with a single available core — this suite exists to prove the pool
    # path is bit-identical, not to be fast.
    return ProcessPoolBlockExecutor(workers=2, oversubscribe=True)


class TestFitDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fitted_state_identical(self, context, parallel, seed):
        resolver = EntityResolver(ResolverConfig())
        serial_model = resolver.fit(context.collection, training_seed=seed,
                                    graphs_by_name=context.graphs_by_name)
        parallel_model = resolver.fit(context.collection, training_seed=seed,
                                      graphs_by_name=context.graphs_by_name,
                                      executor=parallel)
        # The serialized form covers every learned number: thresholds,
        # region profiles, accuracies, combiner parameters.
        for name in serial_model.blocks:
            assert (serial_model.blocks[name].to_dict()
                    == parallel_model.blocks[name].to_dict()), name


class TestPredictDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_predictions_bit_identical(self, context, parallel, seed):
        resolver = EntityResolver(ResolverConfig())
        model = resolver.fit(context.collection, training_seed=seed,
                             graphs_by_name=context.graphs_by_name)
        unlabeled = context.collection.without_labels()

        serial = model.predict_collection(
            unlabeled, graphs_by_name=context.graphs_by_name)
        parallel_run = model.predict_collection(
            unlabeled, graphs_by_name=context.graphs_by_name,
            executor=parallel)

        assert [b.query_name for b in serial.blocks] == \
            [b.query_name for b in parallel_run.blocks]
        for left, right in zip(serial.blocks, parallel_run.blocks):
            assert left.predicted == right.predicted
            assert left.chosen_layer == right.chosen_layer
            assert left.layer_accuracies == right.layer_accuracies
            assert (left.combination.probabilities.weights
                    == right.combination.probabilities.weights)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_evaluate_metrics_bit_identical(self, context, parallel, seed):
        resolver = EntityResolver(ResolverConfig())
        model = resolver.fit(context.collection, training_seed=seed,
                             graphs_by_name=context.graphs_by_name)

        serial = model.evaluate_collection(
            context.collection, graphs_by_name=context.graphs_by_name)
        parallel_run = model.evaluate_collection(
            context.collection, graphs_by_name=context.graphs_by_name,
            executor=parallel)

        for left, right in zip(serial.blocks, parallel_run.blocks):
            assert left.report == right.report
            assert left.predicted == right.predicted
        assert serial.mean_report() == parallel_run.mean_report()


class TestEndToEndDeterminism:
    def test_parallel_fit_then_serial_predict_matches_serial_fit(
            self, context, parallel):
        """Cross modes: a pool-fitted model serves like a serially fitted one."""
        resolver = EntityResolver(ResolverConfig())
        serial_model = resolver.fit(context.collection, training_seed=0,
                                    graphs_by_name=context.graphs_by_name)
        parallel_model = resolver.fit(context.collection, training_seed=0,
                                      graphs_by_name=context.graphs_by_name,
                                      executor=parallel)
        serial_result = serial_model.evaluate_collection(
            context.collection, graphs_by_name=context.graphs_by_name)
        crossed_result = parallel_model.evaluate_collection(
            context.collection, graphs_by_name=context.graphs_by_name)
        for left, right in zip(serial_result.blocks, crossed_result.blocks):
            assert left.report == right.report

    def test_run_config_reports_identical_across_executors(self, context,
                                                           parallel):
        serial = run_config(context, ResolverConfig(), seeds=SEEDS)
        pooled = run_config(context, ResolverConfig(), seeds=SEEDS,
                            executor=parallel)
        assert serial.per_seed_reports == pooled.per_seed_reports
        assert pooled.stats is not None
        assert pooled.stats.executor == "process"

    def test_prepare_identical_across_executors(self, small_dataset, context,
                                                parallel):
        pooled = ExperimentContext.prepare(small_dataset, executor=parallel)
        for name, graphs in context.graphs_by_name.items():
            for function_name, graph in graphs.items():
                assert (pooled.graphs_by_name[name][function_name].weights
                        == graph.weights)
        assert pooled.stats.executor == "process"
        assert pooled.stats.pairs_scored == context.stats.pairs_scored


class TestPoolAccounting:
    def test_one_fork_wave_per_run(self, context):
        """Regression: fit + evaluate through one executor fork once."""
        with ProcessPoolBlockExecutor(workers=2,
                                      oversubscribe=True) as executor:
            resolver = EntityResolver(ResolverConfig())
            model = resolver.fit(context.collection, training_seed=0,
                                 graphs_by_name=context.graphs_by_name,
                                 executor=executor)
            resolution = model.evaluate_collection(
                context.collection, graphs_by_name=context.graphs_by_name,
                executor=executor)
            assert executor.fork_waves == 1
            # The stats records agree: the fit pass paid the fork wave,
            # the evaluate pass reused the pool.
            assert model.fit_stats.fork_waves == 1
            assert resolution.stats.fork_waves == 0

    def test_run_stats_carry_honest_worker_accounting(self, context,
                                                      parallel):
        resolver = EntityResolver(ResolverConfig())
        model = resolver.fit(context.collection, training_seed=0,
                             graphs_by_name=context.graphs_by_name,
                             executor=parallel)
        stats = model.fit_stats
        assert stats.requested_workers == 2
        assert stats.effective_workers == 2  # oversubscribed fixture
        assert stats.host_cores >= 1
        assert stats.available_cores >= 1
        assert stats.cpuset_limited == (
            stats.available_cores < stats.host_cores)
        payload = stats.to_dict()
        for key in ("requested_workers", "effective_workers",
                    "available_cores", "host_cores", "cpuset_limited",
                    "fork_waves"):
            assert key in payload

    def test_serial_stats_report_no_fork_waves(self, context):
        resolver = EntityResolver(ResolverConfig())
        model = resolver.fit(context.collection, training_seed=0,
                             graphs_by_name=context.graphs_by_name)
        assert model.fit_stats.effective_workers == 1
        assert model.fit_stats.fork_waves == 0
