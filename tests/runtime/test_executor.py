"""Block executor backends and their registry wiring."""

from __future__ import annotations

import os

import pytest

from repro.core.config import ResolverConfig
from repro.core.registry import EXECUTORS
from repro.runtime.executor import (
    ProcessPoolBlockExecutor,
    SerialExecutor,
    available_cores,
    build_executor,
    executor_for_workers,
)


def _square(value: int) -> int:
    """Module-level so the process backend can pickle it."""
    return value * value


def _worker_pid(_: object) -> int:
    return os.getpid()


class TestRegistry:
    def test_builtin_backends_are_registered(self):
        assert "serial" in EXECUTORS
        assert "process" in EXECUTORS

    def test_build_executor_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="serial"):
            build_executor("distributed")

    def test_config_validates_executor_and_workers(self):
        with pytest.raises(ValueError, match="unknown executor"):
            ResolverConfig(executor="warp-drive")
        with pytest.raises(ValueError, match="workers"):
            ResolverConfig(workers=0)

    def test_config_roundtrips_runtime_fields(self):
        config = ResolverConfig(executor="process", workers=3)
        rebuilt = ResolverConfig.from_dict(config.to_dict())
        assert (rebuilt.executor, rebuilt.workers) == ("process", 3)

    def test_config_defaults_runtime_fields_for_old_payloads(self):
        payload = ResolverConfig().to_dict()
        del payload["executor"]
        del payload["workers"]
        rebuilt = ResolverConfig.from_dict(payload)
        assert (rebuilt.executor, rebuilt.workers) == ("serial", 1)


class TestSerialExecutor:
    def test_runs_in_payload_order(self):
        executor = SerialExecutor()
        assert executor.run(_square, [3, 1, 2]) == [9, 1, 4]
        assert executor.is_serial

    def test_worker_count_normalized_to_one(self):
        assert SerialExecutor(workers=8).workers == 1


class TestProcessExecutor:
    def test_results_in_payload_order(self):
        executor = ProcessPoolBlockExecutor(workers=3, oversubscribe=True)
        assert executor.run(_square, list(range(10))) == [
            value * value for value in range(10)]
        assert not executor.is_serial

    def test_actually_fans_out_to_other_processes(self):
        executor = ProcessPoolBlockExecutor(workers=2, oversubscribe=True)
        pids = executor.run(_worker_pid, [None, None, None, None])
        assert os.getpid() not in pids

    def test_single_payload_short_circuits_inline(self):
        executor = ProcessPoolBlockExecutor(workers=4, oversubscribe=True)
        assert executor.run(_worker_pid, [None]) == [os.getpid()]

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ProcessPoolBlockExecutor(workers=0)

    def test_effective_workers_capped_at_available_cores(self):
        executor = ProcessPoolBlockExecutor(workers=4096)
        assert executor.effective_workers == min(4096, available_cores())

    def test_oversubscribe_lifts_the_core_cap(self):
        executor = ProcessPoolBlockExecutor(workers=4096, oversubscribe=True)
        assert executor.effective_workers == 4096

    def test_capped_to_one_core_reports_serial(self, monkeypatch):
        monkeypatch.setattr("repro.runtime.executor.available_cores",
                            lambda: 1)
        executor = ProcessPoolBlockExecutor(workers=4)
        assert executor.is_serial
        assert executor.run(_worker_pid, [None, None]) == [os.getpid()] * 2


class TestSelection:
    def test_executor_for_workers_picks_backend(self):
        assert executor_for_workers(1).name == "serial"
        parallel = executor_for_workers(4)
        assert (parallel.name, parallel.workers) == ("process", 4)

    def test_custom_backend_registers_and_builds(self):
        class RecordingExecutor(SerialExecutor):
            name = "recording"

        EXECUTORS.add("recording", RecordingExecutor)
        try:
            assert isinstance(build_executor("recording"), RecordingExecutor)
            ResolverConfig(executor="recording")  # validates
        finally:
            EXECUTORS._entries.pop("recording", None)
