"""Block executor backends and their registry wiring."""

from __future__ import annotations

import math
import os

import pytest

from repro.core.config import ResolverConfig
from repro.core.registry import EXECUTORS
from repro.runtime.executor import (
    CHUNKS_PER_WORKER,
    DegradedParallelismWarning,
    ProcessPoolBlockExecutor,
    SerialExecutor,
    available_cores,
    build_executor,
    core_report,
    env_default_workers,
    executor_for_workers,
    executor_from_config,
    host_cores,
    pack_chunks,
)


def _square(value: int) -> int:
    """Module-level so the process backend can pickle it."""
    return value * value


def _worker_pid(_: object) -> int:
    return os.getpid()


def _fail_on_negative(value: int) -> int:
    if value < 0:
        raise RuntimeError(f"poisoned payload {value}")
    return value


class TestRegistry:
    def test_builtin_backends_are_registered(self):
        assert "serial" in EXECUTORS
        assert "process" in EXECUTORS

    def test_build_executor_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="serial"):
            build_executor("distributed")

    def test_config_validates_executor_and_workers(self):
        with pytest.raises(ValueError, match="unknown executor"):
            ResolverConfig(executor="warp-drive")
        with pytest.raises(ValueError, match="workers"):
            ResolverConfig(workers=0)

    def test_config_roundtrips_runtime_fields(self):
        config = ResolverConfig(executor="process", workers=3)
        rebuilt = ResolverConfig.from_dict(config.to_dict())
        assert (rebuilt.executor, rebuilt.workers) == ("process", 3)

    def test_config_defaults_runtime_fields_for_old_payloads(self):
        payload = ResolverConfig().to_dict()
        del payload["executor"]
        del payload["workers"]
        rebuilt = ResolverConfig.from_dict(payload)
        assert (rebuilt.executor, rebuilt.workers) == ("serial", 1)


class TestSerialExecutor:
    def test_runs_in_payload_order(self):
        executor = SerialExecutor()
        assert executor.run(_square, [3, 1, 2]) == [9, 1, 4]
        assert executor.is_serial

    def test_worker_count_normalized_to_one(self):
        assert SerialExecutor(workers=8).workers == 1


class TestProcessExecutor:
    def test_results_in_payload_order(self):
        executor = ProcessPoolBlockExecutor(workers=3, oversubscribe=True)
        assert executor.run(_square, list(range(10))) == [
            value * value for value in range(10)]
        assert not executor.is_serial

    def test_actually_fans_out_to_other_processes(self):
        executor = ProcessPoolBlockExecutor(workers=2, oversubscribe=True)
        pids = executor.run(_worker_pid, [None, None, None, None])
        assert os.getpid() not in pids

    def test_single_payload_short_circuits_inline(self):
        executor = ProcessPoolBlockExecutor(workers=4, oversubscribe=True)
        assert executor.run(_worker_pid, [None]) == [os.getpid()]

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ProcessPoolBlockExecutor(workers=0)

    def test_effective_workers_capped_at_available_cores(self):
        executor = ProcessPoolBlockExecutor(workers=4096)
        assert executor.effective_workers == min(4096, available_cores())

    def test_oversubscribe_lifts_the_core_cap(self):
        executor = ProcessPoolBlockExecutor(workers=4096, oversubscribe=True)
        assert executor.effective_workers == 4096

    def test_capped_to_one_core_reports_serial(self, monkeypatch):
        monkeypatch.setattr("repro.runtime.executor.available_cores",
                            lambda: 1)
        executor = ProcessPoolBlockExecutor(workers=4)
        assert executor.is_serial
        with pytest.warns(DegradedParallelismWarning):
            assert executor.run(_worker_pid, [None, None]) \
                == [os.getpid()] * 2


class TestPersistentPool:
    def test_one_fork_wave_across_many_runs(self):
        """The regression the rework exists for: run() must not re-fork."""
        with ProcessPoolBlockExecutor(workers=2,
                                      oversubscribe=True) as executor:
            first = set(executor.run(_worker_pid, [None] * 8))
            second = set(executor.run(_worker_pid, [None] * 8))
            third = set(executor.run(_worker_pid, [None] * 8))
            assert executor.fork_waves == 1
            # The same worker processes served every wave of tasks: a
            # re-fork would surface fresh pids each run, so the union
            # across waves must stay within the single pool's size.
            # (Per-wave sets can differ — under load one worker may
            # drain a whole wave of these fast tasks by itself.)
            assert len(first | second | third) <= 2
            assert first and second and third

    def test_close_is_idempotent_and_reopens_on_demand(self):
        executor = ProcessPoolBlockExecutor(workers=2, oversubscribe=True)
        assert executor.run(_square, [1, 2, 3]) == [1, 4, 9]
        executor.close()
        executor.close()
        # A fresh run after close builds a second pool (second wave).
        assert executor.run(_square, [1, 2, 3]) == [1, 4, 9]
        assert executor.fork_waves == 2
        executor.close()

    def test_serial_close_is_a_noop(self):
        executor = SerialExecutor()
        executor.close()
        assert executor.run(_square, [2]) == [4]

    def test_task_exception_shuts_the_pool_down(self):
        """A failing task must not leave orphaned workers behind."""
        executor = ProcessPoolBlockExecutor(workers=2, oversubscribe=True)
        with pytest.raises(RuntimeError, match="poisoned"):
            executor.run(_fail_on_negative, [1, 2, -1, 4])
        assert executor._pool is None
        # The executor stays usable: the next run forks a fresh pool.
        assert executor.run(_square, [1, 2, 3]) == [1, 4, 9]
        assert executor.fork_waves == 2
        executor.close()

    def test_workers_beyond_payload_count_still_correct(self):
        with ProcessPoolBlockExecutor(workers=8,
                                      oversubscribe=True) as executor:
            assert executor.run(_square, [3, 5]) == [9, 25]


class TestChunking:
    def test_chunksize_scales_with_payload_count(self):
        executor = ProcessPoolBlockExecutor(workers=4, oversubscribe=True)
        lanes = 4 * CHUNKS_PER_WORKER
        assert executor.chunksize(1) == 1
        assert executor.chunksize(lanes) == 1
        assert executor.chunksize(400) == math.ceil(400 / lanes)

    def test_pack_chunks_contiguous_without_weights(self):
        chunks = pack_chunks(10, 3)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_pack_chunks_caps_chunk_count_at_payloads(self):
        assert pack_chunks(2, 8) == [[0], [1]]

    def test_pack_chunks_largest_first_bin_packing(self):
        # One giant block plus four small ones: LPT isolates the giant
        # in its own chunk and dispatches it first.
        chunks = pack_chunks(5, 2, weights=[10, 1, 1, 1, 1])
        assert chunks[0] == [0]
        assert sorted(chunks[1]) == [1, 2, 3, 4]

    def test_pack_chunks_covers_every_index_exactly_once(self):
        weights = [(index * 7919) % 13 + 1 for index in range(57)]
        chunks = pack_chunks(57, 8, weights=weights)
        flat = sorted(index for chunk in chunks for index in chunk)
        assert flat == list(range(57))

    def test_pack_chunks_rejects_mismatched_weights(self):
        with pytest.raises(ValueError, match="weights"):
            pack_chunks(3, 2, weights=[1, 2])

    def test_weighted_run_preserves_payload_order(self):
        with ProcessPoolBlockExecutor(workers=3,
                                      oversubscribe=True) as executor:
            payloads = list(range(23))
            weights = [(value * 31) % 7 + 1 for value in payloads]
            assert (executor.run(_square, payloads, weights=weights)
                    == [value * value for value in payloads])


class TestDegradation:
    def test_core_cap_to_serial_warns_loudly(self, monkeypatch):
        monkeypatch.setattr("repro.runtime.executor.available_cores",
                            lambda: 1)
        executor = ProcessPoolBlockExecutor(workers=4)
        with pytest.warns(DegradedParallelismWarning, match="core cap"):
            assert executor.run(_worker_pid, [None, None]) \
                == [os.getpid()] * 2

    def test_degradation_warns_only_once(self, monkeypatch):
        monkeypatch.setattr("repro.runtime.executor.available_cores",
                            lambda: 1)
        executor = ProcessPoolBlockExecutor(workers=4)
        with pytest.warns(DegradedParallelismWarning):
            executor.run(_square, [1, 2])
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert executor.run(_square, [1, 2]) == [1, 4]

    def test_fork_unavailable_falls_back_inline(self, monkeypatch):
        monkeypatch.setattr("repro.runtime.executor._fork_context",
                            lambda: None)
        executor = ProcessPoolBlockExecutor(workers=2, oversubscribe=True)
        with pytest.warns(DegradedParallelismWarning, match="fork"):
            assert executor.run(_worker_pid, [None, None]) \
                == [os.getpid()] * 2
        assert executor.fork_waves == 0

    def test_single_payload_never_pays_pool_overhead(self):
        executor = ProcessPoolBlockExecutor(workers=4, oversubscribe=True)
        assert executor.run(_worker_pid, [None]) == [os.getpid()]
        assert executor.fork_waves == 0

    def test_empty_payloads_return_empty(self):
        executor = ProcessPoolBlockExecutor(workers=4, oversubscribe=True)
        assert executor.run(_square, []) == []
        assert executor.fork_waves == 0


class TestCoreReport:
    def test_report_is_internally_consistent(self):
        report = core_report()
        assert report["available_cores"] >= 1
        assert report["host_cores"] >= 1
        assert report["available_cores"] <= report["host_cores"]
        assert report["cpuset_limited"] == (
            report["available_cores"] < report["host_cores"])
        assert report["available_cores"] == available_cores()
        assert report["host_cores"] == host_cores()

    def test_cpuset_underreport_is_flagged(self, monkeypatch):
        """A container cpuset granting 2 of 8 cores must be recorded."""
        monkeypatch.setattr("repro.runtime.executor.available_cores",
                            lambda: 2)
        monkeypatch.setattr("repro.runtime.executor.host_cores", lambda: 8)
        report = core_report()
        assert report["available_cores"] == 2
        assert report["host_cores"] == 8
        assert report["cpuset_limited"] is True
        # The shard knobs ride along in the same report.
        assert isinstance(report["shard_planes"], bool)
        assert report["shard_cache_bytes"] >= 0
        # The effective worker cap follows the affinity, not the host.
        assert ProcessPoolBlockExecutor(workers=8).effective_workers == 2


class TestEnvWorkers:
    def test_env_default_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert env_default_workers() is None
        monkeypatch.setenv("REPRO_WORKERS", "")
        assert env_default_workers() is None
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert env_default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        assert env_default_workers() is None
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert env_default_workers() is None

    def test_serial_config_widens_to_env_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        executor = executor_from_config(ResolverConfig())
        assert (executor.name, executor.workers) == ("process", 3)

    def test_explicit_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        executor = executor_from_config(
            ResolverConfig(executor="process", workers=2))
        assert (executor.name, executor.workers) == ("process", 2)

    def test_env_of_one_stays_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert executor_from_config(ResolverConfig()).name == "serial"


class TestOversubscribeThreading:
    def test_build_executor_threads_the_knob(self):
        executor = build_executor("process", workers=4096, oversubscribe=True)
        assert executor.effective_workers == 4096

    def test_build_executor_ignores_knob_for_serial(self):
        assert build_executor("serial", oversubscribe=True).name == "serial"

    def test_executor_for_workers_threads_the_knob(self):
        executor = executor_for_workers(4096, oversubscribe=True)
        assert executor.effective_workers == 4096

    def test_config_oversubscribe_reaches_the_pool(self):
        config = ResolverConfig(executor="process", workers=4096,
                                oversubscribe=True)
        assert executor_from_config(config).effective_workers == 4096

    def test_config_roundtrips_oversubscribe(self):
        config = ResolverConfig(oversubscribe=True)
        assert ResolverConfig.from_dict(config.to_dict()).oversubscribe
        payload = ResolverConfig().to_dict()
        del payload["oversubscribe"]
        assert not ResolverConfig.from_dict(payload).oversubscribe


class TestSelection:
    def test_executor_for_workers_picks_backend(self):
        assert executor_for_workers(1).name == "serial"
        parallel = executor_for_workers(4)
        assert (parallel.name, parallel.workers) == ("process", 4)

    def test_custom_backend_registers_and_builds(self):
        class RecordingExecutor(SerialExecutor):
            name = "recording"

        EXECUTORS.add("recording", RecordingExecutor)
        try:
            assert isinstance(build_executor("recording"), RecordingExecutor)
            ResolverConfig(executor="recording")  # validates
        finally:
            EXECUTORS._entries.pop("recording", None)
