"""Batched graph construction must be bit-identical to the naive loops."""

from __future__ import annotations

import pytest

from repro.core.model import (
    apply_fitted_decision,
    apply_fitted_decisions,
    build_decision_layers,
    compute_similarity_graphs,
)
from repro.graph.entity_graph import pair_key
from repro.runtime.batch import batched_similarity_graphs
from repro.runtime.cache import SimilarityCache
from repro.similarity.base import SimilarityFunction
from repro.similarity.functions import default_functions


def _naive_graph_weights(block, features, functions):
    """The seed implementation: score every pair with every function."""
    ids = block.page_ids()
    weights = {function.name: {} for function in functions}
    for i, left_id in enumerate(ids):
        left = features[left_id]
        for right_id in ids[i + 1:]:
            right = features[right_id]
            key = pair_key(left_id, right_id)
            for function in functions:
                weights[function.name][key] = function(left, right)
    return weights


class TestBatchedGraphs:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_bit_identical_to_naive_for_all_functions(self, small_block,
                                                      block_features,
                                                      backend):
        # Pinned to the exact backends: the ambient default may be the
        # opt-in approximate ``numpy32`` (the CI matrix runs it), which
        # is exempt from the bit-identity contract.
        functions = default_functions()
        naive = _naive_graph_weights(small_block, block_features, functions)
        batched = batched_similarity_graphs(small_block, block_features,
                                            functions, backend=backend)
        for function in functions:
            assert batched[function.name].weights == naive[function.name], \
                function.name
            assert batched[function.name].is_complete()
            # Same insertion (pair) order, not just same mapping.
            assert (list(batched[function.name].weights)
                    == list(naive[function.name]))

    def test_prepared_scorers_clamp_like_call(self, small_block,
                                              block_features):
        wild = SimilarityFunction(
            "F_wild", "test", "unclamped", lambda left, right: 7.5,
            lambda features: (lambda left, right: -7.5))
        ids = small_block.page_ids()[:2]
        left, right = block_features[ids[0]], block_features[ids[1]]
        assert wild(left, right) == 1.0  # plain path clamps high
        assert wild.prepared(block_features)(left, right) == 0.0  # low

    def test_function_without_preparer_uses_plain_scorer(self, small_block,
                                                         block_features):
        plain = SimilarityFunction(
            "F_plain", "test", "constant", lambda left, right: 0.25)
        graphs = batched_similarity_graphs(small_block, block_features,
                                           [plain])
        assert set(graphs["F_plain"].weights.values()) == {0.25}

    def test_cache_hit_skips_scoring_and_reproduces_graphs(self, small_block,
                                                           block_features):
        functions = default_functions()[:3]
        cache = SimilarityCache()
        first = batched_similarity_graphs(small_block, block_features,
                                          functions, cache=cache)
        misses = cache.pair_misses
        second = batched_similarity_graphs(small_block, block_features,
                                           functions, cache=cache)
        assert cache.pair_misses == misses  # nothing rescored
        assert cache.pair_hits == misses
        for function in functions:
            assert (second[function.name].weights
                    == first[function.name].weights)

    def test_compute_similarity_graphs_delegates_to_batched(self, small_block,
                                                            block_features,
                                                            block_graphs):
        graphs = compute_similarity_graphs(small_block, block_features,
                                           default_functions())
        for name, graph in block_graphs.items():
            assert graphs[name].weights == graph.weights


class TestBatchedDecisions:
    def test_batched_application_matches_per_layer(self, small_block,
                                                   block_graphs):
        from repro.core.config import ResolverConfig
        from repro.core.resolver import EntityResolver

        resolver = EntityResolver(ResolverConfig())
        model = resolver.fit(small_block, graphs=dict(block_graphs))
        fitted = model.blocks[small_block.query_name]

        layers = build_decision_layers(fitted.layers, block_graphs)
        assert [layer.label for layer in layers] == [
            fitted_layer.label for fitted_layer in fitted.layers]
        for fitted_layer, layer in zip(fitted.layers, layers):
            graph = block_graphs[fitted_layer.function_name]
            expected_graph, expected_probabilities = apply_fitted_decision(
                fitted_layer.fitted, graph)
            assert layer.graph.edges == expected_graph.edges
            assert layer.probabilities == expected_probabilities
            assert list(layer.probabilities) == list(expected_probabilities)

    def test_apply_fitted_decisions_memo_changes_nothing(self, small_block,
                                                         block_graphs):
        from repro.core.config import ResolverConfig
        from repro.core.resolver import EntityResolver

        resolver = EntityResolver(ResolverConfig())
        model = resolver.fit(small_block, graphs=dict(block_graphs))
        fitted = model.blocks[small_block.query_name]
        decisions = [layer.fitted for layer in fitted.layers[:3]]
        graph = block_graphs[fitted.layers[0].function_name]

        batched = apply_fitted_decisions(decisions, graph)
        for decision, (decision_graph, probabilities) in zip(decisions,
                                                             batched):
            for pair, value in graph.pairs():
                assert probabilities[pair] == decision.link_probability(value)
                assert (pair in decision_graph.edges) == decision.decide(value)
