"""Edge blocks through the similarity stage and the serving session.

Previously untested degenerate shapes: blocks with zero or one page
flowing through ``SimilarityGraphs`` (no pairs to score) and
``ResolutionSession.resolve`` (empty requests, cold single-page names).
Everything is exercised under both scoring backends — the edge masks are
where vectorized kernels classically diverge from scalar code.
"""

from __future__ import annotations

import pytest

from repro.core.config import ResolverConfig
from repro.core.model import compute_similarity_graphs
from repro.core.resolver import EntityResolver
from repro.corpus.datasets import www05_like
from repro.corpus.documents import DocumentCollection, NameCollection, WebPage
from repro.pipeline.session import ResolutionSession
from repro.similarity.extended import full_battery

BACKENDS = ("python", "numpy")


@pytest.fixture(scope="module")
def fitted():
    """A model fitted on one small, normal block."""
    collection = www05_like(seed=1, pages_per_name=8,
                            names=["William Cohen"])
    resolver = EntityResolver(ResolverConfig())
    model = resolver.fit(collection, training_seed=0)
    return collection, model, resolver.pipeline_for(collection)


@pytest.fixture(autouse=True)
def _restore_model_config(fitted):
    """Tests swap the shared model's config per backend; undo it so no
    state leaks across the module's tests."""
    _, model, _ = fitted
    original = model.config
    yield
    model.config = original


def _single_page_block() -> NameCollection:
    return NameCollection(query_name="Solo Person", pages=[WebPage(
        doc_id="solo/000", query_name="Solo Person",
        url="http://solo.example.org/about", title="solo",
        text="a single page about one person")])


def _empty_block() -> NameCollection:
    return NameCollection(query_name="Empty Person", pages=[])


class TestSimilarityGraphsEdgeBlocks:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("block_builder", [_empty_block,
                                               _single_page_block])
    def test_no_pair_blocks_produce_empty_graphs(self, fitted, backend,
                                                 block_builder):
        _, _, pipeline = fitted
        block = block_builder()
        features = pipeline.extract_block(block)
        graphs = compute_similarity_graphs(block, features, full_battery(),
                                           backend=backend)
        assert set(graphs) == {function.name
                               for function in full_battery()}
        for graph in graphs.values():
            assert graph.nodes == block.page_ids()
            assert graph.weights == {}

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_predict_collection_with_edge_blocks(self, fitted, backend):
        collection, model, pipeline = fitted
        model.config = ResolverConfig(backend=backend)
        mixed = DocumentCollection(
            name="mixed",
            collections=[collection.collections[0], _single_page_block(),
                         _empty_block()],
            metadata=dict(collection.metadata))
        prediction = model.predict_collection(
            mixed, pipeline=pipeline,
            model_block=collection.collections[0].query_name)
        by_name = {entry.query_name: entry for entry in prediction.blocks}
        assert len(by_name["Solo Person"].predicted) == 1
        assert len(by_name["Empty Person"].predicted) == 0
        assert len(by_name["William Cohen"].predicted) >= 1


class TestSessionEdgeRequests:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_request_resolves_to_nothing(self, fitted, backend):
        collection, model, pipeline = fitted
        model.config = ResolverConfig(backend=backend)
        session = ResolutionSession(model, pipeline=pipeline)
        assert session.resolve([]) == []
        assert session.stats.pages == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cold_single_page_founds_singleton_entity(self, fitted,
                                                      backend):
        collection, model, pipeline = fitted
        model.config = ResolverConfig(backend=backend)
        session = ResolutionSession(
            model, pipeline=pipeline,
            model_block=collection.collections[0].query_name)
        page = _single_page_block().pages[0]
        assignment = session.resolve(page)[0]
        assert assignment.created_new_cluster
        assert assignment.cluster_index == 0
        assert assignment.link_probability == 0.0
        clusters = session.clusters("Solo Person")
        assert [set(cluster) for cluster in clusters] == [{"solo/000"}]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_second_page_scores_against_singleton(self, fitted, backend):
        collection, model, pipeline = fitted
        model.config = ResolverConfig(backend=backend)
        session = ResolutionSession(
            model, pipeline=pipeline,
            model_block=collection.collections[0].query_name)
        first = _single_page_block().pages[0]
        second = WebPage(doc_id="solo/001", query_name="Solo Person",
                         url="http://solo.example.org/contact",
                         title="solo", text="another page, same person")
        session.resolve(first)
        assignment = session.resolve(second)[0]
        # Either outcome is legitimate; the point is the one-vs-many
        # scoring path ran against a single existing page without error.
        assert assignment.doc_id == "solo/001"
        assert assignment.cluster_index in (0, 1)

    def test_backends_agree_on_session_assignments(self, fitted):
        collection, model, pipeline = fitted
        block = collection.collections[0]
        outcomes = []
        for backend in BACKENDS:
            model.config = ResolverConfig(backend=backend)
            session = ResolutionSession(model, pipeline=pipeline)
            pages = list(block.pages)
            session.resolve(pages[:4])
            log = [(a.doc_id, a.cluster_index, a.created_new_cluster,
                    a.link_probability)
                   for page in pages[4:]
                   for a in session.resolve(page)]
            outcomes.append(log)
        assert outcomes[0] == outcomes[1]
