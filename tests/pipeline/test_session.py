"""ResolutionSession — the online request path.

The acceptance bar: a held-out page resolved through the session gets
exactly the assignment a hand-driven
:class:`~repro.core.incremental.IncrementalResolver` would produce from
the same fitted model.
"""

from __future__ import annotations

import pytest

from repro.core.config import ResolverConfig
from repro.core.incremental import IncrementalResolver
from repro.core.model import ResolverModel
from repro.core.resolver import EntityResolver
from repro.corpus.documents import NameCollection
from repro.pipeline import ResolutionSession
from repro.pipeline.session import SessionStats


@pytest.fixture(scope="module")
def split_block(small_block, block_features):
    pages = list(small_block.pages)
    base = NameCollection(query_name=small_block.query_name,
                          pages=pages[:-6])
    held_out = pages[-6:]
    base_features = {page.doc_id: block_features[page.doc_id]
                     for page in base.pages}
    return base, base_features, held_out


@pytest.fixture(scope="module")
def fitted_model(split_block):
    base, base_features, _ = split_block
    return EntityResolver(ResolverConfig()).fit(
        base, training_seed=0, features=base_features)


@pytest.fixture()
def saved_model(fitted_model, tmp_path):
    path = tmp_path / "model.json"
    fitted_model.save(path)
    return path


class TestBootstrap:
    def test_batch_bootstrap_matches_model_predict(self, split_block,
                                                   saved_model,
                                                   block_features):
        base, base_features, _ = split_block
        session = ResolutionSession.open(saved_model)
        assignments = session.resolve(list(base.pages),
                                      features=base_features)
        assert len(assignments) == len(base.pages)
        assert [a.doc_id for a in assignments] == base.page_ids()

        model = ResolverModel.load(saved_model)
        prediction = model.predict_block(base, features=base_features)
        assert session.clusters(base.query_name) == prediction.predicted
        # One bootstrap assignment per predicted entity founded it.
        founders = sum(1 for a in assignments if a.created_new_cluster)
        assert founders == len(prediction.predicted)

    def test_single_page_cold_start_founds_entity(self, split_block,
                                                  saved_model,
                                                  block_features):
        base, _, held_out = split_block
        session = ResolutionSession.open(saved_model)
        page = held_out[0]
        assignment = session.resolve(
            page, features={page.doc_id: block_features[page.doc_id]})[0]
        assert assignment.created_new_cluster
        assert assignment.cluster_index == 0
        assert session.clusters(base.query_name) is not None

    def test_unknown_name_raises_models_keyerror(self, saved_model,
                                                 small_dataset):
        session = ResolutionSession.open(saved_model)
        other = small_dataset.by_name("Adam Cheyer").pages[0]
        with pytest.raises(KeyError, match="no fitted state"):
            session.resolve(other)

    def test_unknown_name_rejects_request_atomically(self, split_block,
                                                     saved_model,
                                                     small_dataset,
                                                     block_features):
        """A mixed request with one unknown name assigns nothing, so the
        same request can be retried after the caller fixes it."""
        base, base_features, held_out = split_block
        session = ResolutionSession.open(saved_model)
        session.resolve(list(base.pages), features=base_features)

        known = held_out[0]
        unknown = small_dataset.by_name("Adam Cheyer").pages[0]
        features = {known.doc_id: block_features[known.doc_id]}
        with pytest.raises(KeyError, match="no fitted state"):
            session.resolve([known, unknown], features=features)
        # The valid page was not consumed: the retry without the bad
        # name succeeds instead of raising "already resolved".
        assignment = session.resolve(known, features=features)[0]
        assert assignment.doc_id == known.doc_id

    def test_model_block_fallback_serves_unknown_names(self, split_block,
                                                       saved_model,
                                                       small_dataset,
                                                       pipeline):
        base, _, _ = split_block
        session = ResolutionSession.open(
            saved_model, pipeline=pipeline, model_block=base.query_name)
        other = small_dataset.by_name("Adam Cheyer").pages[0]
        assignment = session.resolve(other)[0]
        assert assignment.created_new_cluster
        assert "Adam Cheyer" in session.prepared_names()


class TestIncrementalParity:
    def test_held_out_pages_match_incremental_resolver(self, split_block,
                                                       saved_model,
                                                       block_features):
        """The acceptance case: session.resolve == IncrementalResolver."""
        base, base_features, held_out = split_block
        session = ResolutionSession.open(saved_model)
        session.resolve(list(base.pages), features=base_features)

        reference = IncrementalResolver.from_model(
            ResolverModel.load(saved_model), base, base_features)

        for page in held_out:
            features = {page.doc_id: block_features[page.doc_id]}
            ours = session.resolve(page, features=features)[0]
            expected = reference.add_page(block_features[page.doc_id])
            assert ours.doc_id == expected.doc_id
            assert ours.cluster_index == expected.cluster_index
            assert ours.created_new_cluster == expected.created_new_cluster
            assert ours.link_probability == expected.link_probability
        assert session.clusters(base.query_name) == reference.clusters()

    def test_extraction_fallback_when_no_features(self, split_block,
                                                  saved_model, pipeline):
        """Pages without precomputed features are extracted in block
        context — the request path works from raw pages alone."""
        base, base_features, held_out = split_block
        session = ResolutionSession.open(saved_model, pipeline=pipeline)
        session.resolve(list(base.pages), features=base_features)
        assignment = session.resolve(held_out[0])[0]
        assert assignment.doc_id == held_out[0].doc_id
        total = session.clusters(base.query_name).n_items()
        assert total == len(base.pages) + 1

    def test_duplicate_page_rejected(self, split_block, saved_model,
                                     block_features):
        base, base_features, held_out = split_block
        session = ResolutionSession.open(saved_model)
        session.resolve(list(base.pages), features=base_features)
        page = held_out[0]
        features = {page.doc_id: block_features[page.doc_id]}
        session.resolve(page, features=features)
        with pytest.raises(ValueError, match="already resolved"):
            session.resolve(page, features=features)


class TestLruAndStats:
    def test_lru_evicts_least_recent_block(self, small_dataset, pipeline):
        model = EntityResolver(ResolverConfig()).fit(small_dataset,
                                                     training_seed=0)
        session = ResolutionSession(model, pipeline=pipeline, max_blocks=2)
        names = small_dataset.query_names()
        for name in names:  # three blocks through a two-slot LRU
            session.resolve(list(small_dataset.by_name(name).pages))
        assert len(session.prepared_names()) == 2
        assert names[0] not in session
        assert session.stats.evicted_blocks == 1
        with pytest.raises(KeyError, match="no prepared state"):
            session.clusters(names[0])

    def test_evicted_block_rebuilds_on_next_contact(self, small_dataset,
                                                    pipeline):
        model = EntityResolver(ResolverConfig()).fit(small_dataset,
                                                     training_seed=0)
        session = ResolutionSession(model, pipeline=pipeline, max_blocks=1)
        names = small_dataset.query_names()
        session.resolve(list(small_dataset.by_name(names[0]).pages))
        session.resolve(list(small_dataset.by_name(names[1]).pages))
        assert names[0] not in session
        # Back to the evicted name: a fresh bootstrap serves it again.
        session.resolve(list(small_dataset.by_name(names[0]).pages))
        assert names[0] in session
        assert session.stats.prepared_blocks == 3

    def test_stats_counters(self, split_block, saved_model, block_features):
        base, base_features, held_out = split_block
        session = ResolutionSession.open(saved_model)
        session.resolve(list(base.pages), features=base_features)
        for page in held_out[:2]:
            session.resolve(page,
                            features={page.doc_id: block_features[page.doc_id]})
        stats = session.stats
        assert stats.requests == 3
        assert stats.pages == len(base.pages) + 2
        assert stats.incremental_assignments == 2
        assert stats.prepared_blocks == 1
        assert stats.seconds_total > 0.0
        assert stats.mean_request_seconds > 0.0
        assert "3 requests" in stats.summary()

    def test_empty_stats(self):
        stats = SessionStats()
        assert stats.mean_request_seconds == 0.0
        assert stats.p50_request_seconds == 0.0
        assert stats.p99_request_seconds == 0.0

    def test_latency_percentiles_come_from_the_reservoir(self):
        stats = SessionStats()
        for ms in range(1, 101):  # 1ms..100ms, uniform
            stats.record_request(ms / 1000.0, pages=1)
        assert stats.requests == 100
        assert stats.latency.count == 100
        assert stats.p50_request_seconds == pytest.approx(0.050)
        assert stats.p95_request_seconds == pytest.approx(0.095)
        assert stats.p99_request_seconds == pytest.approx(0.099)
        assert "p50" in stats.summary() and "p99" in stats.summary()

    def test_warm_of_a_hot_block_refreshes_without_rebootstrap(
            self, small_dataset, pipeline):
        """Re-warming a prepared name must not discard its incremental
        state: served assignments survive, ``prepared_blocks`` does not
        double-count, and only the LRU recency moves."""
        model = EntityResolver(ResolverConfig()).fit(small_dataset,
                                                     training_seed=0)
        session = ResolutionSession(model, pipeline=pipeline, max_blocks=2)
        names = small_dataset.query_names()
        first = small_dataset.by_name(names[0])
        head = NameCollection(query_name=names[0],
                              pages=list(first.pages)[:20])
        session.warm(head)
        # Serve pages the warm batch did not contain, then re-warm with
        # the original head: the partition must keep the served pages.
        for page in list(first.pages)[20:24]:
            session.resolve(page)
        partition = session.clusters(names[0])
        session.resolve(list(small_dataset.by_name(names[1]).pages)[:10])
        assert session.warm(head) == partition
        assert session.stats.prepared_blocks == 2  # one per name, no redo
        assert session.stats.evicted_blocks == 0
        # The re-warm refreshed recency: a third name now evicts the
        # *other* block, not the re-warmed one.
        session.resolve(list(small_dataset.by_name(names[2]).pages)[:10])
        assert names[0] in session
        assert names[1] not in session

    def test_invalid_max_blocks(self, fitted_model):
        with pytest.raises(ValueError, match="max_blocks"):
            ResolutionSession(fitted_model, max_blocks=0)

    def test_unsupported_combiner(self, small_block, block_features,
                                  block_graphs):
        model = EntityResolver(ResolverConfig(combiner="majority")).fit(
            small_block, training_seed=0, graphs=block_graphs)
        with pytest.raises(ValueError, match="combiner"):
            ResolutionSession(model)
