"""A custom registered blocking stage flows through the whole pipeline.

The satellite acceptance case for composability: registering a blocking
stage and swapping it into a plan changes the ``Blocks`` artifact (and
therefore what gets fitted/served) while every other stage — extraction,
similarity, fitting, serving — runs untouched.
"""

from __future__ import annotations

import pytest

from repro.core.config import ResolverConfig
from repro.core.registry import STAGES, register_stage
from repro.core.resolver import EntityResolver
from repro.corpus.documents import DocumentCollection, NameCollection
from repro.pipeline import Blocks, Corpus, Pipeline, Stage, fit_plan, \
    predict_plan

TRUNCATE = 12


@pytest.fixture(scope="module")
def truncating_stage_name():
    """Register a blocker that keeps each block's first pages only."""
    @register_stage("test_truncate_blocks")
    class TruncatingBlockingStage(Stage):
        name = "test_truncate_blocks"
        consumes = Corpus
        produces = Blocks

        def run(self, corpus, ctx):
            blocks = [NameCollection(query_name=block.query_name,
                                     pages=list(block.pages)[:TRUNCATE])
                      for block in corpus.collection]
            return Blocks(blocks=blocks, source=corpus.collection)

    yield "test_truncate_blocks"
    del STAGES._entries["test_truncate_blocks"]


class TestCustomBlockingStage:
    def test_changes_blocks_artifact_only(self, small_dataset,
                                          truncating_stage_name):
        """Fit through the custom blocker == fit on a pre-truncated
        dataset through the default plan: the other stages behaved
        identically on the re-blocked input."""
        plan = Pipeline.from_names(
            [truncating_stage_name, "extract", "similarity", "fit"],
            name="truncated-fit")
        model = EntityResolver(ResolverConfig()).fit(
            small_dataset, training_seed=0, plan=plan)

        truncated = DocumentCollection(
            name=small_dataset.name,
            collections=[NameCollection(query_name=b.query_name,
                                        pages=list(b.pages)[:TRUNCATE])
                         for b in small_dataset.collections],
            metadata=dict(small_dataset.metadata),
        )
        reference = EntityResolver(ResolverConfig()).fit(
            truncated, training_seed=0)

        assert model.block_names() == reference.block_names()
        for name in model.blocks:
            assert (model.blocks[name].to_dict()
                    == reference.blocks[name].to_dict()), name

    def test_flows_through_serving_end_to_end(self, small_dataset,
                                              truncating_stage_name):
        """The swapped stage drives predict too: only truncated pages
        are clustered, through the stock decide/cluster stages."""
        fit = Pipeline.from_names(
            [truncating_stage_name, "extract", "similarity", "fit"],
            name="truncated-fit")
        serve = Pipeline.from_names(
            [truncating_stage_name, "extract", "similarity", "decide",
             "cluster"],
            name="truncated-predict")
        model = EntityResolver(ResolverConfig()).fit(
            small_dataset, training_seed=0, plan=fit)
        prediction = model.predict_collection(small_dataset.without_labels(),
                                              plan=serve)
        assert len(prediction.blocks) == len(small_dataset.collections)
        for block in prediction.blocks:
            assert block.predicted.n_items() == TRUNCATE

    def test_default_plan_unaffected(self, small_dataset,
                                     truncating_stage_name):
        """Registering under a fresh name never leaks into default plans."""
        assert fit_plan(ResolverConfig()).stage_names()[0] == "block"
        assert predict_plan(ResolverConfig()).stage_names()[0] == "block"
        model = EntityResolver(ResolverConfig()).fit(small_dataset,
                                                     training_seed=0)
        first = small_dataset.collections[0]
        assert model.blocks[first.query_name].n_training > 0
