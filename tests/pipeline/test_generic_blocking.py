"""End-to-end generic blocking: an arbitrary registered blocker drives
fit, predict, serving and the session — candidate masks included.
"""

import json
from dataclasses import replace

import pytest

from repro.blocking.base import Blocker, BlockingResult, pairs_within
from repro.core.config import ResolverConfig
from repro.core.registry import BLOCKERS, register_blocker
from repro.core.resolver import EntityResolver
from repro.corpus.datasets import www05_like
from repro.pipeline.artifacts import Blocks, Corpus
from repro.pipeline.plan import fit_plan
from repro.pipeline.session import ResolutionSession
from repro.pipeline.stage import PipelineContext
from repro.pipeline.stages import BlockingStage
from repro.runtime.executor import executor_for_workers


@pytest.fixture(scope="module")
def dataset():
    return www05_like(seed=5, pages_per_name=12,
                      names=["William Cohen", "Adam Cheyer"])


class TestBlockerRegistry:
    def test_builtins_registered(self):
        for name in ("query_name", "token", "sorted_neighborhood"):
            assert name in BLOCKERS

    def test_config_validates_blocker(self):
        ResolverConfig(blocker="token")  # valid
        with pytest.raises(ValueError, match="known blockers"):
            ResolverConfig(blocker="no_such_blocker")

    def test_blocker_round_trips_through_config_payload(self):
        config = ResolverConfig(blocker="token")
        payload = config.to_dict()
        assert payload["blocker"] == "token"
        assert ResolverConfig.from_dict(payload).blocker == "token"
        # Pre-blocker payloads default to the paper's scheme.
        del payload["blocker"]
        assert ResolverConfig.from_dict(payload).blocker == "query_name"

    def test_custom_blocker_registers_and_drives_the_stage(self, dataset):
        @register_blocker("per_person_test", replace=True)
        class PerPersonBlocker(Blocker):
            """Oracle blocker: candidates = true co-referent pairs."""

            name = "per_person_test"

            def block(self, pages):
                page_list = list(pages)
                by_person = {}
                for page in page_list:
                    by_person.setdefault(page.person_id, []).append(
                        page.doc_id)
                result = BlockingResult(pages=page_list)
                for ids in by_person.values():
                    result.candidate_pairs.update(pairs_within(ids))
                return result

        config = ResolverConfig(blocker="per_person_test")
        ctx = PipelineContext(config=config,
                              executor=executor_for_workers(1))
        blocks = BlockingStage().run(Corpus(collection=dataset), ctx)
        assert isinstance(blocks, Blocks)
        # The oracle blocker yields one component per real person.
        n_persons = len({page.person_id for page in dataset.all_pages()})
        assert len(blocks) == n_persons
        for block in blocks:
            mask = blocks.mask_for(block.query_name)
            assert mask is not None and len(mask) == \
                len(block) * (len(block) - 1) // 2


class TestQueryNamePathUnchanged:
    def test_default_stage_emits_dense_per_name_blocks(self, dataset):
        ctx = PipelineContext(config=ResolverConfig(),
                              executor=executor_for_workers(1))
        blocks = BlockingStage().run(Corpus(collection=dataset), ctx)
        assert blocks.names() == dataset.query_names()
        assert blocks.masks == {}
        assert all(blocks.mask_for(name) is None for name in blocks.names())


class TestGenericFitPredict:
    @pytest.fixture(scope="class")
    def token_model(self, dataset):
        return EntityResolver(ResolverConfig(blocker="token")).fit(
            dataset, training_seed=0)

    def test_fit_produces_synthetic_blocks(self, token_model):
        assert token_model.block_names()
        assert all(name.startswith("~block:")
                   for name in token_model.block_names())

    def test_parallel_fit_is_identical(self, dataset, token_model):
        parallel = EntityResolver(ResolverConfig(blocker="token")).fit(
            dataset, training_seed=0, executor=executor_for_workers(2))
        serial_payload = {name: fitted.to_dict()
                          for name, fitted in token_model.blocks.items()}
        parallel_payload = {name: fitted.to_dict()
                            for name, fitted in parallel.blocks.items()}
        assert json.dumps(serial_payload, sort_keys=True) \
            == json.dumps(parallel_payload, sort_keys=True)

    def test_evaluate_re_blocks_and_scores(self, dataset, token_model):
        resolution = token_model.evaluate_collection(dataset)
        assert [entry.query_name for entry in resolution.blocks] \
            == token_model.block_names()
        assert 0.0 <= resolution.mean_report().f1 <= 1.0

    def test_serial_and_parallel_serving_agree(self, dataset, token_model):
        def clusterings(executor):
            resolution = token_model.evaluate_collection(dataset,
                                                         executor=executor)
            return [sorted(tuple(sorted(cluster))
                           for cluster in entry.predicted)
                    for entry in resolution.blocks]

        assert clusterings(executor_for_workers(1)) \
            == clusterings(executor_for_workers(2))

    def test_save_load_round_trip_keeps_blocker(self, dataset, token_model,
                                                tmp_path):
        path = tmp_path / "token_model.json"
        token_model.save(path)
        from repro.core.model import ResolverModel

        loaded = ResolverModel.load(path)
        assert loaded.config.blocker == "token"
        resolution = loaded.evaluate_collection(dataset)
        reference = token_model.evaluate_collection(dataset)
        assert [sorted(tuple(sorted(c)) for c in entry.predicted)
                for entry in resolution.blocks] \
            == [sorted(tuple(sorted(c)) for c in entry.predicted)
                for entry in reference.blocks]

    def test_fit_plan_blocks_carry_masks(self, dataset):
        config = ResolverConfig(blocker="token")
        ctx = PipelineContext(config=config,
                              executor=executor_for_workers(1))
        plan = fit_plan(config)
        blocks = plan.stages[0].run(Corpus(collection=dataset), ctx)
        assert blocks.masks
        total_candidates = sum(len(mask) for mask in blocks.masks.values())
        assert total_candidates > 0
        # Masked graphs downstream carry candidate edges only: RunStats
        # pair accounting equals the candidate count per function.
        resolver = EntityResolver(config)
        model = resolver.fit(dataset, training_seed=0)
        n_functions = len(config.function_names)
        assert model.fit_stats.pairs_scored \
            == total_candidates * n_functions


class TestSessionRouting:
    def test_nameless_pages_route_through_token_index(self, dataset):
        model = EntityResolver(ResolverConfig()).fit(dataset,
                                                     training_seed=0)
        pipeline = EntityResolver().pipeline_for(dataset)
        session = ResolutionSession(model, pipeline=pipeline)
        block = dataset.collections[0]
        pages = list(block.pages)
        session.resolve(pages[:-1])
        nameless = replace(pages[-1], query_name="")
        assignment = session.resolve(nameless)[0]
        assert assignment.doc_id == nameless.doc_id
        assert session.stats.routed_pages == 1
        # The routed page landed in the block it shares tokens with.
        assert nameless.doc_id in {
            doc_id for cluster in session.clusters(block.query_name)
            for doc_id in cluster}

    def test_boilerplate_stop_keys_do_not_vote(self, dataset):
        """A key shared by (more than max_block_fraction of) all indexed
        names is boilerplate: it must not route a nameless page to the
        lexicographically first name."""
        model = EntityResolver(ResolverConfig()).fit(dataset,
                                                     training_seed=0)
        pipeline = EntityResolver().pipeline_for(dataset)
        session = ResolutionSession(model, pipeline=pipeline)
        for block in dataset.collections:
            boilerplated = [replace(page, text=f"Megacorp {page.text}")
                            for page in block.pages]
            session.resolve(boilerplated)
        orphan = replace(dataset.collections[0].pages[0],
                         doc_id="orphan/1", query_name="",
                         title="", text="Megacorp")
        with pytest.raises(KeyError, match="no query name"):
            session.resolve(orphan)

    def test_token_index_evicted_with_lru_blocks(self, dataset):
        model = EntityResolver(ResolverConfig()).fit(dataset,
                                                     training_seed=0)
        pipeline = EntityResolver().pipeline_for(dataset)
        session = ResolutionSession(model, pipeline=pipeline, max_blocks=1)
        for block in dataset.collections:
            session.resolve(list(block.pages))
        assert session.stats.evicted_blocks >= 1
        # Only the surviving prepared block may hold index entries.
        assert set(session._keys_by_name) == set(session.prepared_names())
        indexed = set().union(*session._token_index.values())
        assert indexed == set(session.prepared_names())

    def test_unroutable_nameless_page_raises_keyerror(self, dataset):
        model = EntityResolver(ResolverConfig()).fit(dataset,
                                                     training_seed=0)
        pipeline = EntityResolver().pipeline_for(dataset)
        session = ResolutionSession(model, pipeline=pipeline)
        orphan = replace(dataset.collections[0].pages[0],
                         doc_id="orphan/0", query_name="",
                         title="", text="nothing shared here at all")
        with pytest.raises(KeyError, match="no query name"):
            session.resolve(orphan)
