"""Staged fit/predict must be bit-identical to the pre-pipeline path.

The acceptance bar of the pipeline redesign: rehosting the monolithic
collection loops onto stage plans changes *structure*, never *values*.
These tests replicate the pre-redesign loops inline (the same way the
runtime benchmark keeps a seed-path replica) and compare every
observable output — fitted state, predictions, combination
probabilities and metric reports — for serial and ``--workers 2``
execution at several training seeds.
"""

from __future__ import annotations

import pytest

from repro.core.config import ResolverConfig
from repro.core.model import ResolverModel
from repro.core.resolver import EntityResolver
from repro.experiments.runner import ExperimentContext
from repro.runtime.executor import ProcessPoolBlockExecutor

SEEDS = [0, 1]


@pytest.fixture(scope="module")
def context(small_dataset):
    return ExperimentContext.prepare(small_dataset)


@pytest.fixture(scope="module")
def parallel():
    # Oversubscribed so a genuine pool runs even on one-core hosts.
    return ProcessPoolBlockExecutor(workers=2, oversubscribe=True)


def legacy_fit(resolver: EntityResolver, context,
               training_seed: int) -> ResolverModel:
    """The pre-pipeline serial fit loop, replicated verbatim."""
    blocks = {}
    for block in context.collection:
        blocks[block.query_name] = resolver.fit_block(
            block, context.graphs_by_name[block.query_name], training_seed)
    return ResolverModel(config=resolver.config, blocks=blocks)


def legacy_evaluate(model: ResolverModel, context) -> list:
    """The pre-pipeline serial evaluate loop, replicated verbatim."""
    results = []
    for block in context.collection:
        results.append(model.evaluate_block(
            block, graphs=context.graphs_by_name[block.query_name]))
    model.release_fit_caches()
    return results


class TestFitParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_staged_serial_fit_matches_legacy(self, context, seed):
        staged = EntityResolver(ResolverConfig()).fit(
            context.collection, training_seed=seed,
            graphs_by_name=context.graphs_by_name)
        legacy = legacy_fit(EntityResolver(ResolverConfig()), context, seed)
        assert list(staged.blocks) == list(legacy.blocks)
        for name in staged.blocks:
            # The serialized form covers every learned number.
            assert (staged.blocks[name].to_dict()
                    == legacy.blocks[name].to_dict()), name

    @pytest.mark.parametrize("seed", SEEDS)
    def test_staged_workers2_fit_matches_legacy(self, context, parallel,
                                                seed):
        staged = EntityResolver(ResolverConfig()).fit(
            context.collection, training_seed=seed,
            graphs_by_name=context.graphs_by_name, executor=parallel)
        legacy = legacy_fit(EntityResolver(ResolverConfig()), context, seed)
        for name in staged.blocks:
            assert (staged.blocks[name].to_dict()
                    == legacy.blocks[name].to_dict()), name


class TestPredictParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_staged_evaluate_matches_legacy(self, context, seed):
        resolver = EntityResolver(ResolverConfig())
        staged_model = resolver.fit(context.collection, training_seed=seed,
                                    graphs_by_name=context.graphs_by_name)
        staged = staged_model.evaluate_collection(
            context.collection, graphs_by_name=context.graphs_by_name)

        legacy_model = legacy_fit(EntityResolver(ResolverConfig()), context,
                                  seed)
        legacy = legacy_evaluate(legacy_model, context)

        assert [b.query_name for b in staged.blocks] == \
            [b.query_name for b in legacy]
        for left, right in zip(staged.blocks, legacy):
            assert left.predicted == right.predicted
            assert left.report == right.report
            assert left.chosen_layer == right.chosen_layer
            assert left.layer_accuracies == right.layer_accuracies
            assert (left.combination.probabilities.weights
                    == right.combination.probabilities.weights)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_staged_workers2_evaluate_matches_legacy(self, context, parallel,
                                                     seed):
        resolver = EntityResolver(ResolverConfig())
        staged_model = resolver.fit(context.collection, training_seed=seed,
                                    graphs_by_name=context.graphs_by_name,
                                    executor=parallel)
        staged = staged_model.evaluate_collection(
            context.collection, graphs_by_name=context.graphs_by_name,
            executor=parallel)

        legacy_model = legacy_fit(EntityResolver(ResolverConfig()), context,
                                  seed)
        legacy = legacy_evaluate(legacy_model, context)
        for left, right in zip(staged.blocks, legacy):
            assert left.predicted == right.predicted
            assert left.report == right.report
            assert (left.combination.probabilities.weights
                    == right.combination.probabilities.weights)

    def test_staged_predict_without_precomputed_graphs(self, small_dataset):
        """End-to-end (extraction inside the plan) matches the graph-fed
        path — the similarity stage computes what the context would."""
        resolver = EntityResolver(ResolverConfig())
        model = resolver.fit(small_dataset, training_seed=0)
        unlabeled = small_dataset.without_labels()
        from_scratch = model.predict_collection(unlabeled)

        context = ExperimentContext.prepare(small_dataset)
        fed_model = EntityResolver(ResolverConfig()).fit(
            small_dataset, training_seed=0,
            graphs_by_name=context.graphs_by_name)
        fed = fed_model.predict_collection(
            unlabeled, graphs_by_name=context.graphs_by_name)
        for left, right in zip(from_scratch.blocks, fed.blocks):
            assert left.predicted == right.predicted
            assert left.chosen_layer == right.chosen_layer
