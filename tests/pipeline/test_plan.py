"""Pipeline plan mechanics: chaining, validation, stats, registry."""

from __future__ import annotations

import pytest

from repro.core.config import ResolverConfig
from repro.core.registry import STAGES, register_stage
from repro.core.resolver import EntityResolver
from repro.pipeline import (
    Blocks,
    Corpus,
    Decisions,
    FeatureSet,
    Pipeline,
    PipelineContext,
    PlanError,
    Resolution,
    SimilarityGraphs,
    Stage,
    fit_plan,
    predict_plan,
)
from repro.pipeline.stages import (
    ClusterStage,
    ExtractionStage,
    QueryNameBlockingStage,
)
from repro.runtime.executor import executor_for_workers


class TestPlanConstruction:
    def test_default_fit_plan_chains(self):
        plan = fit_plan(ResolverConfig())
        assert plan.stage_names() == ["block", "extract", "similarity", "fit"]
        chain = [stage.produces for stage in plan.stages]
        assert chain == [Blocks, FeatureSet, SimilarityGraphs, Decisions]

    def test_default_predict_plan_chains(self):
        plan = predict_plan(ResolverConfig())
        assert plan.stage_names() == [
            "block", "extract", "similarity", "decide", "cluster"]
        assert plan.stages[-1].produces is Resolution

    def test_empty_plan_rejected(self):
        with pytest.raises(PlanError, match="at least one stage"):
            Pipeline([])

    def test_mismatched_chain_rejected(self):
        with pytest.raises(PlanError, match="consumes"):
            Pipeline([QueryNameBlockingStage(), ClusterStage()])

    def test_wrong_initial_artifact_rejected(self):
        plan = fit_plan(ResolverConfig())
        ctx = PipelineContext(config=ResolverConfig(),
                              executor=executor_for_workers(1))
        with pytest.raises(PlanError, match="consumes Corpus"):
            plan.run(Blocks(blocks=[]), ctx)

    def test_from_names_resolves_registry(self):
        plan = Pipeline.from_names(["block", "extract"], name="prefix")
        assert plan.stage_names() == ["block", "extract"]
        assert isinstance(plan.stages[1], ExtractionStage)

    def test_from_names_unknown_stage(self):
        with pytest.raises(ValueError, match="unknown pipeline stage"):
            Pipeline.from_names(["block", "nope"])

    def test_builtin_stages_registered(self):
        for name in ("block", "extract", "similarity", "fit", "decide",
                     "cluster"):
            assert name in STAGES

    def test_replace_swaps_one_stage(self):
        class OtherBlocker(QueryNameBlockingStage):
            name = "other"

        plan = fit_plan(ResolverConfig()).replace("block", OtherBlocker())
        assert plan.stage_names() == ["other", "extract", "similarity", "fit"]

    def test_replace_unknown_stage(self):
        with pytest.raises(KeyError, match="no stage"):
            fit_plan(ResolverConfig()).replace("nope", ExtractionStage())

    def test_explain_lists_stages_and_artifacts(self):
        text = predict_plan(ResolverConfig()).explain()
        assert "Corpus" in text
        for name in ("block", "extract", "similarity", "decide", "cluster"):
            assert f"[{name}:" in text
        assert "Resolution" in text


class TestRegisterStage:
    def test_register_and_compose_by_name(self, small_dataset):
        @register_stage("test_first_two_blocks")
        class FirstTwoBlocksStage(Stage):
            name = "test_first_two_blocks"
            consumes = Corpus
            produces = Blocks

            def run(self, corpus, ctx):
                return Blocks(blocks=list(corpus.collection)[:2],
                              source=corpus.collection)

        try:
            plan = Pipeline.from_names(
                ["test_first_two_blocks", "extract", "similarity", "fit"],
                name="custom")
            model = EntityResolver(ResolverConfig()).fit(
                small_dataset, training_seed=0, plan=plan)
            assert model.block_names() == small_dataset.query_names()[:2]
        finally:
            del STAGES._entries["test_first_two_blocks"]

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_stage("block")(QueryNameBlockingStage)


class TestStageStats:
    def test_fit_records_every_stage(self, small_dataset):
        model = EntityResolver(ResolverConfig()).fit(small_dataset,
                                                     training_seed=0)
        stats = model.fit_stage_stats
        assert [entry.stage for entry in stats] == [
            "block", "extract", "similarity", "fit"]
        assert all(entry.seconds >= 0.0 for entry in stats)
        fit_entry = stats[-1]
        assert fit_entry.consumes == "SimilarityGraphs"
        assert fit_entry.produces == "Decisions"
        # The heavy stage carries the engine pass record.
        assert fit_entry.run_stats is not None
        assert fit_entry.run_stats.n_blocks == len(small_dataset.collections)
        assert stats[0].run_stats is None

    def test_predict_records_every_stage(self, small_dataset):
        model = EntityResolver(ResolverConfig()).fit(small_dataset,
                                                     training_seed=0)
        prediction = model.predict_collection(small_dataset)
        assert [entry.stage for entry in prediction.stage_stats] == [
            "block", "extract", "similarity", "decide", "cluster"]
        assert prediction.stage_stats[-1].run_stats is not None

    def test_stage_stats_serialize(self, small_dataset):
        import json

        model = EntityResolver(ResolverConfig()).fit(small_dataset,
                                                     training_seed=0)
        payload = json.dumps([entry.to_dict()
                              for entry in model.fit_stage_stats])
        assert "similarity" in payload
