"""Property-based tests of the scale generator (PR 7 tentpole).

Three families of invariants:

* **Determinism** — the same (config, names, seed) triple yields a
  byte-identical corpus from a *fresh* generator, under both seeding
  schemes, with fixed and sampled traits, and with every skew knob on.
* **Streaming equivalence** — lazily iterated blocks equal the
  materialized corpus block for block, and under independent seeding any
  single block regenerates in O(1) — identically — without the rest of
  the corpus (including from a different name list: the seed is a pure
  function of (corpus seed, query name)).
* **Label consistency** — block sizes match ``pages_per_name``, true
  cluster counts respect the configured bounds and any explicit
  ``cluster_counts``, and ids stay unique even for colliding surnames.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.datasets import scale_config, scale_generator
from repro.corpus.generator import (
    CorpusGenerator,
    GeneratorConfig,
    NameTraits,
    independent_block_seed,
    synthesize_query_names,
)
from repro.corpus.vocabulary import build_vocabulary

# Distinct surnames: the legacy "surname" doc-id scheme keys blocks by
# surname, so only the "full" scheme (covered by its own test below) is
# safe for namesake query names.
NAMES = ["Ada Prop", "Bo Quill", "Cy Stream", "Di Trellis"]

FIXED = NameTraits()

scale_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),   # seed
    st.integers(min_value=6, max_value=14),       # pages per name
    st.booleans(),                                # fixed vs sampled traits
    st.booleans(),                                # skew knobs on/off
)


def _config(pages: int, seeding: str, fixed: bool,
            skewed: bool) -> GeneratorConfig:
    return GeneratorConfig(
        pages_per_name=pages,
        max_clusters=5,
        seeding=seeding,
        fixed_traits=FIXED if fixed else None,
        cluster_count_skew=1.2 if skewed else 0.0,
        page_length_skew=3.0 if skewed else 0.0,
        vocabulary_zipf=1.1 if skewed else 0.0,
        doc_id_scheme="full" if skewed else "surname",
    )


def _pages(collection):
    return [block.pages for block in collection.collections]


@settings(max_examples=10, deadline=None)
@given(scale_params, st.sampled_from(["sequential", "independent"]))
def test_same_seed_is_byte_identical(params, seeding):
    seed, pages, fixed, skewed = params
    config = _config(pages, seeding, fixed, skewed)
    first = CorpusGenerator(config).generate(NAMES, seed)
    second = CorpusGenerator(config).generate(NAMES, seed)
    # WebPage is a frozen dataclass of strings, so == is byte equality
    # over every field (doc_id, url, title, text, person_id).
    assert _pages(first) == _pages(second)
    assert first.metadata == second.metadata


@settings(max_examples=10, deadline=None)
@given(scale_params, st.sampled_from(["sequential", "independent"]))
def test_streaming_equals_full_generation(params, seeding):
    seed, pages, fixed, skewed = params
    config = _config(pages, seeding, fixed, skewed)
    generator = CorpusGenerator(config)
    full = generator.generate(NAMES, seed)
    streamed = list(generator.iter_blocks(NAMES, seed))
    assert [block.pages for block in streamed] == _pages(full)
    assert [block.query_name for block in streamed] == \
        [block.query_name for block in full.collections]


@settings(max_examples=10, deadline=None)
@given(scale_params)
def test_independent_block_regenerates_in_isolation(params):
    seed, pages, fixed, skewed = params
    config = _config(pages, "independent", fixed, skewed)
    generator = CorpusGenerator(config)
    full = generator.generate(NAMES, seed)
    for index, name in enumerate(NAMES):
        alone = generator.generate_block(name, seed)
        assert alone.pages == full.collections[index].pages
    # The block does not depend on the name list at all: generating a
    # different corpus that shares one name yields the identical block.
    other = generator.generate([NAMES[2], "Zu Other"], seed)
    assert other.collections[0].pages == full.collections[2].pages


def test_sequential_seeding_is_position_dependent():
    """The legacy scheme's contrast property: the same name at another
    position draws another seed, which is exactly why generate_block
    refuses to run under it."""
    generator = CorpusGenerator(GeneratorConfig(pages_per_name=8,
                                                max_clusters=4))
    first = generator.generate(NAMES, seed=5)
    reordered = generator.generate(list(reversed(NAMES)), seed=5)
    assert first.by_name(NAMES[0]).pages != \
        reordered.by_name(NAMES[0]).pages
    try:
        generator.generate_block(NAMES[0], 5)
    except ValueError as error:
        assert "independent" in str(error)
    else:
        raise AssertionError("generate_block accepted sequential seeding")


def test_independent_seed_is_pure_and_stable():
    assert independent_block_seed(3, "Ada Prop") == \
        independent_block_seed(3, "Ada Prop")
    assert independent_block_seed(3, "Ada Prop") != \
        independent_block_seed(4, "Ada Prop")
    assert independent_block_seed(3, "Ada Prop") != \
        independent_block_seed(3, "Bo Prop")


@settings(max_examples=10, deadline=None)
@given(scale_params, st.sampled_from(["sequential", "independent"]))
def test_labels_consistent_with_config(params, seeding):
    seed, pages, fixed, skewed = params
    config = _config(pages, seeding, fixed, skewed)
    generator = CorpusGenerator(config)
    fixed_count = min(3, pages)
    collection = generator.generate(
        NAMES, seed, cluster_counts={NAMES[0]: fixed_count})
    for block in collection.collections:
        assert len(block) == pages
        lower = min(config.min_clusters, pages)
        upper = min(config.max_clusters, pages)
        assert lower <= block.n_persons() <= upper
        for page in block:
            assert page.person_id is not None
            assert page.query_name == block.query_name
    assert collection.by_name(NAMES[0]).n_persons() == fixed_count
    ids = [page.doc_id for page in collection.all_pages()]
    assert len(ids) == len(set(ids))


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=2, max_value=40),
       st.floats(min_value=0.0, max_value=1.0))
def test_synthesized_names_unique_and_deterministic(seed, n_names, rate):
    vocabulary = build_vocabulary(7)
    names = synthesize_query_names(vocabulary, n_names, seed,
                                   collision_rate=rate)
    assert names == synthesize_query_names(vocabulary, n_names, seed,
                                           collision_rate=rate)
    assert len(names) == n_names
    assert len(set(names)) == n_names
    for name in names:
        first, last = name.split()
        assert first in vocabulary.first_names
        assert last in vocabulary.last_names


def test_collision_rate_packs_surnames():
    vocabulary = build_vocabulary(7)
    spread = synthesize_query_names(vocabulary, 40, seed=3,
                                    collision_rate=0.0)
    packed = synthesize_query_names(vocabulary, 40, seed=3,
                                    collision_rate=0.9)
    surnames = lambda names: len({name.split()[-1] for name in names})
    assert surnames(packed) < surnames(spread)


def test_scale_corpus_is_collision_safe():
    """Namesake query names must not collide on doc or person ids — the
    "full" doc-id scheme scale_config selects keys by the whole name."""
    generator, names = scale_generator(12, seed=9, pages_per_name=6,
                                       collision_rate=1.0)
    assert len({name.split()[-1] for name in names}) < len(names)
    collection = generator.generate(names, seed=9)
    ids = [page.doc_id for page in collection.all_pages()]
    assert len(ids) == len(set(ids))
    # person ids must stay block-local too: ground truth is computed on
    # the whole universe by generic blocking metrics.
    persons_by_block = [
        {page.person_id for page in block.pages}
        for block in collection.collections
    ]
    for index, persons in enumerate(persons_by_block):
        for other in persons_by_block[index + 1:]:
            assert not persons & other


def test_skew_knobs_change_output_deterministically():
    base = scale_config(pages_per_name=8)
    generator, names = scale_generator(4, seed=11, pages_per_name=8,
                                       config=base)
    skewless = CorpusGenerator(
        scale_config(pages_per_name=8, cluster_count_skew=0.0,
                     page_length_skew=0.0, vocabulary_zipf=0.0),
        vocabulary=generator.vocabulary)
    assert _pages(generator.generate(names, 11)) != \
        _pages(skewless.generate(names, 11))


def test_vocabulary_zipf_skews_token_frequencies():
    """Under a Zipfian lexicon the head content word dominates the body
    text far more than under uniform draws (deterministic at a fixed
    seed, so no flakiness)."""
    from collections import Counter

    def head_share(vocabulary_zipf: float) -> float:
        config = GeneratorConfig(pages_per_name=12, max_clusters=3,
                                 vocabulary_zipf=vocabulary_zipf,
                                 fixed_traits=NameTraits())
        generator = CorpusGenerator(config)
        counts = Counter()
        for block in generator.iter_blocks(NAMES, 17):
            for page in block.pages:
                counts.update(
                    word for word in page.text.lower().split()
                    if word.rstrip(".") in generator.vocabulary.content_words
                    or word in generator.vocabulary.content_words)
        total = sum(counts.values())
        return counts.most_common(1)[0][1] / total

    assert head_share(1.4) > 2 * head_share(0.0)


def test_page_length_skew_grows_the_tail():
    def longest_page(skew: float) -> int:
        config = GeneratorConfig(pages_per_name=12, max_clusters=3,
                                 page_length_skew=skew,
                                 fixed_traits=NameTraits())
        generator = CorpusGenerator(config)
        return max(len(page.text.split())
                   for block in generator.iter_blocks(NAMES, 19)
                   for page in block.pages)

    assert longest_page(1.2) > longest_page(0.0)
