"""Property-based tests for string similarity measures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.strings import (
    _reference_distance,
    jaro,
    jaro_winkler,
    levenshtein,
    name_similarity,
    normalized_edit_similarity,
)

words = st.text(alphabet="abcdexyz", min_size=0, max_size=12)


class TestLevenshteinProperties:
    @given(words, words)
    def test_symmetric(self, left, right):
        assert levenshtein(left, right) == levenshtein(right, left)

    @given(st.text(min_size=0, max_size=80), st.text(min_size=0, max_size=80))
    @settings(max_examples=300)
    def test_fast_path_matches_reference_dp(self, left, right):
        # The production path (prefix/suffix stripping + Myers'
        # bit-parallel column updates) must equal the O(m*n) dynamic
        # program on arbitrary unicode, including long repeats.
        assert levenshtein(left, right) == _reference_distance(left, right)

    @given(words)
    def test_identity(self, word):
        assert levenshtein(word, word) == 0

    @given(words, words)
    def test_bounded_by_longer_string(self, left, right):
        assert levenshtein(left, right) <= max(len(left), len(right))

    @given(words, words)
    def test_at_least_length_difference(self, left, right):
        assert levenshtein(left, right) >= abs(len(left) - len(right))

    @settings(max_examples=40)
    @given(words, words, words)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(words, st.sampled_from("abcxyz"))
    def test_single_append_costs_one(self, word, char):
        assert levenshtein(word, word + char) == 1


class TestJaroProperties:
    @given(words, words)
    def test_symmetric(self, left, right):
        assert jaro(left, right) == jaro(right, left)

    @given(words, words)
    def test_unit_interval(self, left, right):
        assert 0.0 <= jaro(left, right) <= 1.0

    @given(words)
    def test_identity(self, word):
        assert jaro(word, word) == 1.0

    @given(words, words)
    def test_winkler_at_least_jaro(self, left, right):
        assert jaro_winkler(left, right) >= jaro(left, right) - 1e-12

    @given(words, words)
    def test_winkler_unit_interval(self, left, right):
        assert 0.0 <= jaro_winkler(left, right) <= 1.0


class TestNormalizedEditProperties:
    @given(words, words)
    def test_unit_interval(self, left, right):
        assert 0.0 <= normalized_edit_similarity(left, right) <= 1.0

    @given(words, words)
    def test_symmetric(self, left, right):
        assert (normalized_edit_similarity(left, right)
                == normalized_edit_similarity(right, left))


name_parts = st.text(alphabet="abcdef", min_size=1, max_size=6)
names = st.builds(lambda f, l: f.capitalize() + " " + l.capitalize(),
                  name_parts, name_parts)


class TestNameSimilarityProperties:
    @given(names, names)
    def test_symmetric(self, left, right):
        assert name_similarity(left, right) == name_similarity(right, left)

    @given(names, names)
    def test_unit_interval(self, left, right):
        assert 0.0 <= name_similarity(left, right) <= 1.0

    @given(names)
    def test_identity(self, name):
        assert name_similarity(name, name) == 1.0

    @given(names)
    def test_surname_subform(self, name):
        assert name_similarity(name.split()[-1], name) == 0.9
