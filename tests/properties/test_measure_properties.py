"""Property-based tests for vector/set similarity measures."""

from hypothesis import given
from hypothesis import strategies as st

from repro.similarity.measures import (
    cosine,
    dice,
    extended_jaccard,
    jaccard,
    overlap_coefficient,
    pearson_similarity,
)

keys = st.sampled_from([f"k{i}" for i in range(8)])
vectors = st.dictionaries(keys, st.floats(min_value=0.01, max_value=10.0),
                          min_size=0, max_size=8)
sets = st.frozensets(keys, max_size=8)


class TestVectorMeasureProperties:
    @given(vectors, vectors)
    def test_cosine_symmetric(self, left, right):
        # Summation order may differ (iteration over the smaller operand),
        # so symmetry holds up to float round-off.
        assert abs(cosine(left, right) - cosine(right, left)) < 1e-12

    @given(vectors, vectors)
    def test_cosine_unit_interval(self, left, right):
        assert 0.0 <= cosine(left, right) <= 1.0

    @given(vectors)
    def test_cosine_self_is_one(self, vector):
        if vector:
            assert abs(cosine(vector, vector) - 1.0) < 1e-9

    @given(vectors, vectors)
    def test_pearson_symmetric(self, left, right):
        assert abs(pearson_similarity(left, right)
                   - pearson_similarity(right, left)) < 1e-12

    @given(vectors, vectors)
    def test_pearson_unit_interval(self, left, right):
        assert 0.0 <= pearson_similarity(left, right) <= 1.0

    @given(vectors, vectors)
    def test_extended_jaccard_symmetric(self, left, right):
        assert abs(extended_jaccard(left, right)
                   - extended_jaccard(right, left)) < 1e-12

    @given(vectors, vectors)
    def test_extended_jaccard_unit_interval(self, left, right):
        assert 0.0 <= extended_jaccard(left, right) <= 1.0

    @given(vectors)
    def test_extended_jaccard_self_is_one(self, vector):
        if vector:
            assert abs(extended_jaccard(vector, vector) - 1.0) < 1e-9

    @given(vectors, vectors)
    def test_extended_jaccard_below_cosine(self, left, right):
        # Tanimoto <= cosine for non-negative vectors.
        assert extended_jaccard(left, right) <= cosine(left, right) + 1e-9


class TestSetMeasureProperties:
    @given(sets, sets)
    def test_overlap_symmetric(self, left, right):
        assert (overlap_coefficient(left, right)
                == overlap_coefficient(right, left))

    @given(sets, sets)
    def test_overlap_unit_interval(self, left, right):
        assert 0.0 <= overlap_coefficient(left, right) <= 1.0

    @given(sets, sets)
    def test_jaccard_leq_dice_leq_overlap(self, left, right):
        j = jaccard(left, right)
        d = dice(left, right)
        o = overlap_coefficient(left, right)
        assert j <= d + 1e-12
        assert d <= o + 1e-12

    @given(sets)
    def test_self_similarity_one(self, items):
        if items:
            assert jaccard(items, items) == 1.0
            assert dice(items, items) == 1.0
            assert overlap_coefficient(items, items) == 1.0
