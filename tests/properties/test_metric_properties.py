"""Property-based tests for clustering metrics.

Random partition pairs over a small universe; metric invariants must hold
for all of them.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.bcubed import bcubed_scores
from repro.metrics.clusterings import Clustering, clustering_from_assignments
from repro.metrics.pairwise import pairwise_scores
from repro.metrics.purity import fp_measure, inverse_purity, purity
from repro.metrics.rand import adjusted_rand_index, rand_index

ITEMS = [f"d{i}" for i in range(9)]


@st.composite
def partitions(draw):
    """A random partition of ITEMS encoded as a label assignment."""
    labels = draw(st.lists(st.integers(min_value=0, max_value=4),
                           min_size=len(ITEMS), max_size=len(ITEMS)))
    return clustering_from_assignments(
        {item: f"c{label}" for item, label in zip(ITEMS, labels)})


class TestMetricInvariants:
    @given(partitions(), partitions())
    def test_all_in_unit_interval(self, predicted, truth):
        assert 0.0 <= fp_measure(predicted, truth) <= 1.0
        assert 0.0 <= purity(predicted, truth) <= 1.0
        assert 0.0 <= inverse_purity(predicted, truth) <= 1.0
        assert 0.0 <= rand_index(predicted, truth) <= 1.0
        scores = pairwise_scores(predicted, truth)
        assert 0.0 <= scores.f1 <= 1.0
        bcubed = bcubed_scores(predicted, truth)
        assert 0.0 <= bcubed.f1 <= 1.0

    @given(partitions())
    def test_perfect_on_self(self, clustering):
        assert fp_measure(clustering, clustering) == 1.0
        assert rand_index(clustering, clustering) == 1.0
        assert pairwise_scores(clustering, clustering).f1 == 1.0
        assert adjusted_rand_index(clustering, clustering) == 1.0
        assert bcubed_scores(clustering, clustering).f1 == 1.0

    @given(partitions(), partitions())
    def test_purity_duality(self, predicted, truth):
        assert purity(predicted, truth) == inverse_purity(truth, predicted)

    @given(partitions(), partitions())
    def test_rand_symmetric(self, predicted, truth):
        assert rand_index(predicted, truth) == rand_index(truth, predicted)

    @given(partitions(), partitions())
    def test_fp_symmetric(self, predicted, truth):
        # Fp is the harmonic mean of purity and inverse purity, which swap
        # under argument exchange, so Fp itself is symmetric.
        assert fp_measure(predicted, truth) == fp_measure(truth, predicted)

    @given(partitions(), partitions())
    def test_pairwise_confusion_consistency(self, predicted, truth):
        scores = pairwise_scores(predicted, truth)
        assert (scores.true_positives + scores.false_positives
                == predicted.co_referent_pairs())
        assert (scores.true_positives + scores.false_negatives
                == truth.co_referent_pairs())

    @given(partitions(), partitions())
    def test_bcubed_recall_is_precision_swapped(self, predicted, truth):
        forward = bcubed_scores(predicted, truth)
        backward = bcubed_scores(truth, predicted)
        assert abs(forward.precision - backward.recall) < 1e-12
        assert abs(forward.recall - backward.precision) < 1e-12


class TestClusteringInvariants:
    @given(partitions())
    def test_partition_covers_universe(self, clustering):
        assert clustering.items == frozenset(ITEMS)
        assert sum(clustering.sizes()) == len(ITEMS)

    @given(partitions())
    def test_co_referent_pairs_from_sizes(self, clustering):
        expected = sum(size * (size - 1) // 2 for size in clustering.sizes())
        assert clustering.co_referent_pairs() == expected
