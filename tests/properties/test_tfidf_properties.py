"""Property-based tests of the TF-IDF vectorizer."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extraction.tfidf import TfidfVectorizer

tokens = st.sampled_from([f"t{i}" for i in range(12)])
documents = st.lists(st.lists(tokens, min_size=1, max_size=20),
                     min_size=1, max_size=8)


class TestTfidfProperties:
    @settings(max_examples=40)
    @given(documents)
    def test_vectors_unit_length(self, docs):
        vectorizer = TfidfVectorizer().fit(docs)
        for doc in docs:
            vector = vectorizer.transform(doc)
            if vector:
                norm = math.sqrt(sum(v * v for v in vector.values()))
                assert abs(norm - 1.0) < 1e-9

    @settings(max_examples=40)
    @given(documents)
    def test_weights_positive(self, docs):
        vectorizer = TfidfVectorizer().fit(docs)
        for doc in docs:
            assert all(weight > 0.0
                       for weight in vectorizer.transform(doc).values())

    @settings(max_examples=40)
    @given(documents)
    def test_support_is_filtered_tokens(self, docs):
        vectorizer = TfidfVectorizer().fit(docs)
        for doc in docs:
            vector = vectorizer.transform(doc)
            filtered = {token.lower() for token in doc
                        if len(token) >= vectorizer.min_token_length}
            assert set(vector) == filtered

    @settings(max_examples=30)
    @given(documents, st.lists(tokens, min_size=1, max_size=20))
    def test_transform_deterministic(self, docs, query):
        vectorizer = TfidfVectorizer().fit(docs)
        assert vectorizer.transform(query) == vectorizer.transform(query)

    @settings(max_examples=30)
    @given(st.lists(tokens, min_size=1, max_size=20))
    def test_document_order_invariance(self, doc):
        """A document's vector only depends on its token multiset."""
        corpus = [doc]
        vectorizer = TfidfVectorizer().fit(corpus)
        forward = vectorizer.transform(doc)
        backward = vectorizer.transform(list(reversed(doc)))
        assert set(forward) == set(backward)
        for key in forward:
            assert abs(forward[key] - backward[key]) < 1e-12
