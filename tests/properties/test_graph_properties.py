"""Property-based tests for graph algorithms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.components import UnionFind, connected_components
from repro.graph.correlation import correlation_cluster
from repro.graph.entity_graph import DecisionGraph, WeightedPairGraph, pair_key
from repro.graph.transitive import transitive_closure_clusters
from repro.graph.validation import graph_from_clusters, is_partition

NODES = [f"n{i}" for i in range(8)]
node_strategy = st.sampled_from(NODES)
edge_strategy = st.tuples(node_strategy, node_strategy).filter(
    lambda pair: pair[0] != pair[1]).map(lambda pair: pair_key(*pair))
edges_strategy = st.frozensets(edge_strategy, max_size=20)


class TestClosureProperties:
    @given(edges_strategy)
    def test_components_partition_nodes(self, edges):
        graph = DecisionGraph.from_pairs(NODES, edges)
        clusters = transitive_closure_clusters(graph)
        assert is_partition([set(c) for c in clusters], NODES)

    @given(edges_strategy)
    def test_every_edge_is_intra_cluster(self, edges):
        graph = DecisionGraph.from_pairs(NODES, edges)
        clusters = transitive_closure_clusters(graph)
        membership = {}
        for index, cluster in enumerate(clusters):
            for node in cluster:
                membership[node] = index
        for left, right in edges:
            assert membership[left] == membership[right]

    @given(edges_strategy)
    def test_closure_idempotent(self, edges):
        graph = DecisionGraph.from_pairs(NODES, edges)
        clusters = transitive_closure_clusters(graph)
        closed = graph_from_clusters(NODES, [set(c) for c in clusters])
        reclustered = transitive_closure_clusters(closed)
        assert ({frozenset(c) for c in clusters}
                == {frozenset(c) for c in reclustered})

    @given(edges_strategy, edges_strategy)
    def test_monotone_in_edges(self, smaller, extra):
        small_graph = DecisionGraph.from_pairs(NODES, smaller)
        big_graph = DecisionGraph.from_pairs(NODES, smaller | extra)
        assert (len(transitive_closure_clusters(big_graph))
                <= len(transitive_closure_clusters(small_graph)))


class TestUnionFindProperties:
    @given(st.lists(edge_strategy, max_size=20))
    def test_matches_connected_components(self, edges):
        forest = UnionFind(NODES)
        for left, right in edges:
            forest.union(left, right)
        from_forest = {frozenset(group) for group in forest.groups()}
        from_function = {frozenset(group) for group in
                         connected_components(NODES, edges)}
        assert from_forest == from_function


probability_strategy = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def probability_graphs(draw):
    graph = WeightedPairGraph(nodes=list(NODES))
    for i, left in enumerate(NODES):
        for right in NODES[i + 1:]:
            graph.weights[pair_key(left, right)] = draw(probability_strategy)
    return graph


class TestCorrelationProperties:
    @settings(max_examples=25, deadline=None)
    @given(probability_graphs(), st.integers(min_value=0, max_value=5))
    def test_output_is_partition(self, graph, seed):
        clusters = correlation_cluster(graph, seed=seed)
        assert is_partition([set(c) for c in clusters], NODES)
