"""Property-based tests for blocking schemes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.name_blocking import QueryNameBlocker
from repro.blocking.sorted_neighborhood import (
    SortedNeighborhoodBlocker,
    domain_key,
    title_key,
)
from repro.blocking.token_blocking import TokenBlocker
from repro.corpus.documents import WebPage


@st.composite
def page_universes(draw):
    """A small universe of labeled pages with varied names/domains."""
    n_pages = draw(st.integers(min_value=2, max_value=12))
    pages = []
    for index in range(n_pages):
        name = draw(st.sampled_from(["A One", "B Two", "C Three"]))
        person = draw(st.sampled_from(["p0", "p1", "p2"]))
        domain = draw(st.sampled_from(["x.org", "y.net", "z.com"]))
        word = draw(st.sampled_from(["Alpha", "Beta", "gamma", "delta"]))
        pages.append(WebPage(
            doc_id=f"d/{index:02d}", query_name=name,
            url=f"http://{domain}/p{index}",
            title=f"{word} title {index}",
            text=f"{word} body text for page {index}",
            person_id=f"{name.split()[-1].lower()}-{person}",
        ))
    return pages


class TestBlockingProperties:
    @settings(max_examples=30, deadline=None)
    @given(page_universes())
    def test_candidates_are_valid_pairs(self, pages):
        ids = {page.doc_id for page in pages}
        for blocker in (QueryNameBlocker(), TokenBlocker(),
                        SortedNeighborhoodBlocker(window=3)):
            result = blocker.block(pages)
            for left, right in result.candidate_pairs:
                assert left in ids and right in ids
                assert left < right  # canonical keys

    @settings(max_examples=30, deadline=None)
    @given(page_universes())
    def test_reduction_ratio_in_unit_interval(self, pages):
        for blocker in (QueryNameBlocker(), TokenBlocker(),
                        SortedNeighborhoodBlocker(window=3)):
            result = blocker.block(pages)
            assert 0.0 <= result.reduction_ratio() <= 1.0
            assert 0.0 <= result.pair_completeness() <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(page_universes())
    def test_query_name_blocking_is_lossless_here(self, pages):
        # Person ids embed the query name in this universe, so co-referent
        # pages always share a name: the paper's blocker loses nothing.
        result = QueryNameBlocker().block(pages)
        assert result.pair_completeness() == 1.0

    @settings(max_examples=30, deadline=None)
    @given(page_universes(), st.integers(min_value=2, max_value=6))
    def test_sorted_neighborhood_window_monotone(self, pages, window):
        small = SortedNeighborhoodBlocker(window=window,
                                          keys=[title_key]).block(pages)
        large = SortedNeighborhoodBlocker(window=window + 2,
                                          keys=[title_key]).block(pages)
        assert small.candidate_pairs <= large.candidate_pairs

    @settings(max_examples=30, deadline=None)
    @given(page_universes())
    def test_multi_pass_superset_of_single_pass(self, pages):
        single = SortedNeighborhoodBlocker(window=3,
                                           keys=[title_key]).block(pages)
        multi = SortedNeighborhoodBlocker(
            window=3, keys=[title_key, domain_key]).block(pages)
        assert single.candidate_pairs <= multi.candidate_pairs

    @settings(max_examples=30, deadline=None)
    @given(page_universes())
    def test_blockers_deterministic(self, pages):
        for blocker in (QueryNameBlocker(), TokenBlocker(),
                        SortedNeighborhoodBlocker(window=3)):
            assert (blocker.block(pages).candidate_pairs
                    == blocker.block(pages).candidate_pairs)
