"""Plane-path parity: shard views score bit-identically to dicts.

The zero-copy plane encoding (:mod:`repro.runtime.planes`) promises that
a worker scoring ``np.frombuffer`` views over a shard segment produces
the *same bytes* as the parent scoring the original feature dicts —
under both the ``python`` and ``numpy`` backends.  The opt-in
``numpy32`` backend is the deliberate exception: its float32 pair dots
carry rounding, bounded here at 1e-4 absolute on [0, 1] scores, with the
integer-exact kernels still required to match bit-for-bit.

Blocks come from the seeded corpus generator, so every shrunk
counterexample is a reproducible (seed, pages, alpha) triple.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.core.config import ResolverConfig
from repro.core.resolver import EntityResolver
from repro.corpus.datasets import custom_dataset
from repro.corpus.generator import GeneratorConfig
from repro.runtime import planes as planes_module
from repro.runtime.planes import (
    FeaturePlanes,
    PlaneBuffer,
    PlaneFeatureMap,
    PlaneWriter,
    encode_features,
)
from repro.similarity.backends import BACKENDS
from repro.similarity.extended import full_battery

PYTHON = BACKENDS.get("python")
NUMPY = BACKENDS.get("numpy")
NUMPY32 = BACKENDS.get("numpy32")

#: Integer/string kernels whose arithmetic never leaves int64 — required
#: to stay bit-identical even under numpy32 (see Numpy32Backend docs).
EXACT_UNDER_FLOAT32 = {"F2", "F4", "F5", "F6", "F11", "F13"}

#: Absolute tolerance the float-vector measures get under numpy32.
FLOAT32_TOLERANCE = 1e-4


def bits(value: float) -> bytes:
    return struct.pack("<d", value)


def generated_block(seed: int, pages: int, alpha: float):
    config = GeneratorConfig(pages_per_name=pages, max_clusters=3,
                             cluster_size_alpha=alpha, vocabulary_seed=7)
    collection = custom_dataset(["Ada Wong"], seed=seed, config=config,
                                cluster_counts={"Ada Wong": 2})
    block = collection.collections[0]
    pipeline = EntityResolver(ResolverConfig()).pipeline_for(collection)
    return block, pipeline.extract_block(block)


def plane_view(features) -> PlaneFeatureMap:
    """Encode the dict and rebuild the view a shard worker would see."""
    writer = PlaneWriter()
    header = encode_features(features, writer)
    buffer = bytearray(writer.nbytes + 64)
    writer.write_into(memoryview(buffer), 64)
    return PlaneFeatureMap(FeaturePlanes(
        header, PlaneBuffer(memoryview(buffer).toreadonly(), 64)))


block_inputs = st.tuples(st.integers(0, 10_000), st.integers(2, 12),
                         st.floats(1.0, 2.5))


class TestShardViewBitIdentity:
    @settings(max_examples=12, deadline=None)
    @given(block_inputs)
    def test_numpy_scores_from_views_match_dict_scores(self, inputs):
        seed, pages, alpha = inputs
        block, features = generated_block(seed, pages, alpha)
        ids = block.page_ids()
        battery = full_battery()
        reference = NUMPY.block_scores(ids, features, battery)
        candidate = NUMPY.block_scores(ids, plane_view(features), battery)
        assert reference.keys() == candidate.keys()
        for name in reference:
            assert list(reference[name]) == list(candidate[name])
            for key, value in reference[name].items():
                assert bits(value) == bits(candidate[name][key]), \
                    (name, key)

    @settings(max_examples=8, deadline=None)
    @given(block_inputs)
    def test_python_scores_from_rebuilt_pages_match(self, inputs):
        """The scalar fallback path over lazily rebuilt PageFeatures."""
        seed, pages, alpha = inputs
        block, features = generated_block(seed, pages, alpha)
        ids = block.page_ids()
        battery = full_battery()
        reference = PYTHON.block_scores(ids, features, battery)
        candidate = PYTHON.block_scores(ids, plane_view(features), battery)
        for name in reference:
            assert list(reference[name]) == list(candidate[name])
            for key, value in reference[name].items():
                assert bits(value) == bits(candidate[name][key]), \
                    (name, key)

    @settings(max_examples=8, deadline=None)
    @given(block_inputs, st.integers(2, 5))
    def test_masked_scores_from_views_match(self, inputs, mask_span):
        from repro.graph.entity_graph import pair_key

        seed, pages, alpha = inputs
        block, features = generated_block(seed, pages, alpha)
        ids = block.page_ids()
        span = min(mask_span, len(ids))
        mask = frozenset(pair_key(ids[i], ids[j])
                         for i in range(span) for j in range(i + 1, span))
        battery = full_battery()
        reference = NUMPY.block_scores(ids, features, battery, mask=mask)
        candidate = NUMPY.block_scores(ids, plane_view(features), battery,
                                       mask=mask)
        for name in reference:
            assert list(reference[name]) == list(candidate[name])
            for key, value in reference[name].items():
                assert bits(value) == bits(candidate[name][key])


class TestNumpy32Tolerance:
    @settings(max_examples=12, deadline=None)
    @given(block_inputs)
    def test_float32_scores_stay_within_tolerance(self, inputs):
        seed, pages, alpha = inputs
        block, features = generated_block(seed, pages, alpha)
        ids = block.page_ids()
        battery = full_battery()
        reference = NUMPY.block_scores(ids, features, battery)
        candidate = NUMPY32.block_scores(ids, plane_view(features), battery)
        assert reference.keys() == candidate.keys()
        for name in reference:
            assert list(reference[name]) == list(candidate[name])
            for key, value in reference[name].items():
                approx = candidate[name][key]
                if name in EXACT_UNDER_FLOAT32:
                    assert bits(value) == bits(approx), (name, key)
                else:
                    assert abs(value - approx) <= FLOAT32_TOLERANCE, \
                        (name, key, value, approx)

    def test_numpy32_is_registered_but_never_the_default(self, monkeypatch):
        from repro.similarity.backends import default_backend

        assert BACKENDS.get("numpy32") is NUMPY32
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend() == "python"

    def test_numpy32_never_serializes_into_models(self):
        """A model fitted under numpy32 must load exactly elsewhere:
        the serialized config cannot pin a backend name."""
        config = ResolverConfig(backend="numpy32")
        assert "numpy32" not in repr(config.to_dict())


class TestDecodedObjectBitIdentity:
    @settings(max_examples=10, deadline=None)
    @given(block_inputs)
    def test_rebuilt_pages_equal_originals_with_order(self, inputs):
        seed, pages, alpha = inputs
        _, features = generated_block(seed, pages, alpha)
        rebuilt = plane_view(features)
        assert list(rebuilt) == list(features)
        for doc_id, page in features.items():
            twin = rebuilt[doc_id]
            assert page.tfidf == twin.tfidf
            assert list(page.tfidf) == list(twin.tfidf)
            assert page.concept_vector == twin.concept_vector
            assert list(page.concept_vector) == list(twin.concept_vector)
            assert page.concept_set == twin.concept_set
            assert page.organizations == twin.organizations
            assert page.other_persons == twin.other_persons
            assert page.locations == twin.locations
            assert page.n_tokens == twin.n_tokens
