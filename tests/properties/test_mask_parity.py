"""Masked-scoring parity: candidate masks never change a pair's bits.

Extends the backend-parity suite (:mod:`tests.properties.
test_backend_parity`) to the candidate-pair masks the blocking layer
threads through the similarity backends: for any mask, masked scoring
must be IEEE-byte-identical across backends *and* equal to dense scoring
restricted to the candidate pairs — in the dense sweep's pair order.
Tolerance is zero everywhere.
"""

from __future__ import annotations

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ResolverConfig
from repro.core.resolver import EntityResolver
from repro.corpus.datasets import custom_dataset
from repro.corpus.generator import GeneratorConfig
from repro.graph.entity_graph import pair_key
from repro.runtime.batch import batched_similarity_graphs
from repro.similarity.backends import NumpyBackend, PythonBackend
from repro.similarity.extended import full_battery
from repro.similarity.functions import default_functions

PYTHON = PythonBackend()
NUMPY = NumpyBackend()


def bits(value: float) -> bytes:
    return struct.pack("<d", value)


def generated_block(seed: int, pages: int):
    config = GeneratorConfig(pages_per_name=pages, max_clusters=3,
                             vocabulary_seed=7)
    collection = custom_dataset(["Ada Wong"], seed=seed, config=config,
                                cluster_counts={"Ada Wong": 2})
    block = collection.collections[0]
    pipeline = EntityResolver(ResolverConfig()).pipeline_for(collection)
    return block, pipeline.extract_block(block)


def drawn_mask(draw, ids: list[str]) -> frozenset:
    """A hypothesis-chosen subset of the block's pairs."""
    all_pairs = [pair_key(left, right)
                 for i, left in enumerate(ids) for right in ids[i + 1:]]
    keep = draw(st.lists(st.booleans(), min_size=len(all_pairs),
                         max_size=len(all_pairs)))
    return frozenset(pair for pair, kept in zip(all_pairs, keep) if kept)


@st.composite
def masked_inputs(draw):
    seed = draw(st.integers(0, 10_000))
    pages = draw(st.integers(2, 10))
    block, features = generated_block(seed, pages)
    mask = drawn_mask(draw, block.page_ids())
    return block, features, mask


class TestMaskedScoringParity:
    @settings(max_examples=15, deadline=None)
    @given(masked_inputs())
    def test_masked_equals_dense_restricted_and_backends_agree(self, inputs):
        block, features, mask = inputs
        ids = block.page_ids()
        battery = full_battery()
        dense = PYTHON.block_scores(ids, features, battery)
        masked_python = PYTHON.block_scores(ids, features, battery, mask=mask)
        masked_numpy = NUMPY.block_scores(ids, features, battery, mask=mask)
        assert dense.keys() == masked_python.keys() == masked_numpy.keys()
        for name in dense:
            # Exactly the candidate pairs, in the dense sweep's order.
            expected_keys = [key for key in dense[name] if key in mask]
            assert list(masked_python[name]) == expected_keys
            assert list(masked_numpy[name]) == expected_keys
            for key in expected_keys:
                reference = bits(dense[name][key])
                assert bits(masked_python[name][key]) == reference, \
                    (name, key)
                assert bits(masked_numpy[name][key]) == reference, \
                    (name, key)

    @settings(max_examples=8, deadline=None)
    @given(masked_inputs())
    def test_masked_graphs_carry_candidate_edges_only(self, inputs):
        block, features, mask = inputs
        functions = default_functions()
        for backend in ("python", "numpy"):
            graphs = batched_similarity_graphs(block, features, functions,
                                               backend=backend, mask=mask)
            for name, graph in graphs.items():
                assert set(graph.weights) == set(mask), (backend, name)
                assert graph.nodes == block.page_ids()

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 8))
    def test_full_mask_equals_dense(self, seed, pages):
        """A mask naming every pair is byte-for-byte the dense result."""
        block, features = generated_block(seed, pages)
        ids = block.page_ids()
        full = frozenset(pair_key(left, right)
                         for i, left in enumerate(ids)
                         for right in ids[i + 1:])
        battery = full_battery()
        dense = PYTHON.block_scores(ids, features, battery)
        for backend in (PYTHON, NUMPY):
            masked = backend.block_scores(ids, features, battery, mask=full)
            for name in dense:
                assert list(masked[name]) == list(dense[name])
                for key, value in dense[name].items():
                    assert bits(masked[name][key]) == bits(value)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 8))
    def test_empty_mask_scores_nothing(self, seed, pages):
        block, features = generated_block(seed, pages)
        ids = block.page_ids()
        for backend in (PYTHON, NUMPY):
            scores = backend.block_scores(ids, features, full_battery(),
                                          mask=frozenset())
            assert all(weights == {} for weights in scores.values())
