"""Property-based tests of the corpus generator.

For any (seed, page budget, cluster count) configuration the generated
collection must be structurally sound: complete labels, unique ids, exact
page/cluster counts, parsable URLs and non-empty text.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.datasets import custom_dataset
from repro.corpus.generator import GeneratorConfig
from repro.similarity.urls import parse_url

configs = st.tuples(
    st.integers(min_value=0, max_value=10_000),   # seed
    st.integers(min_value=4, max_value=24),       # pages per name
    st.integers(min_value=1, max_value=4),        # clusters
)


@settings(max_examples=15, deadline=None)
@given(configs)
def test_generated_collection_is_sound(params):
    seed, pages, clusters = params
    clusters = min(clusters, pages)
    dataset = custom_dataset(
        ["Ada Prop"], seed=seed,
        config=GeneratorConfig(pages_per_name=pages),
        cluster_counts={"Ada Prop": clusters})
    block = dataset.by_name("Ada Prop")

    assert len(block) == pages
    assert block.n_persons() == clusters

    ids = block.page_ids()
    assert len(ids) == len(set(ids))

    for page in block:
        assert page.person_id is not None
        assert page.query_name == "Ada Prop"
        assert page.text.strip()
        parsed = parse_url(page.url)
        assert parsed.domain
        assert "." in parsed.domain

    # Every true cluster is non-empty and they partition the block.
    sizes = [len(cluster) for cluster in block.true_clusters()]
    assert sum(sizes) == pages
    assert all(size >= 1 for size in sizes)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_generation_is_a_pure_function_of_seed(seed):
    config = GeneratorConfig(pages_per_name=8)
    first = custom_dataset(["Ada Prop"], seed=seed, config=config,
                           cluster_counts={"Ada Prop": 2})
    second = custom_dataset(["Ada Prop"], seed=seed, config=config,
                            cluster_counts={"Ada Prop": 2})
    assert ([(p.doc_id, p.url, p.text) for p in first.all_pages()]
            == [(p.doc_id, p.url, p.text) for p in second.all_pages()])
