"""Cross-backend parity: numpy and python scoring are bit-identical.

The ``numpy`` backend's contract (:mod:`repro.similarity.backends`) is
*bit* equality with the scalar reference, not closeness — tolerance is
zero everywhere in this suite.  Blocks come from the seeded corpus
generator (:mod:`repro.corpus.generator`), so every shrunk
counterexample is a reproducible (seed, pages, noise) triple.
"""

from __future__ import annotations

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ResolverConfig
from repro.core.resolver import EntityResolver
from repro.corpus.datasets import custom_dataset
from repro.corpus.generator import GeneratorConfig
from repro.runtime.batch import batched_similarity_graphs
from repro.similarity.backends import NumpyBackend, PythonBackend
from repro.similarity.batch import _pairwise_path_distances
from repro.similarity.extended import full_battery
from repro.similarity.functions import default_functions
from repro.similarity.strings import levenshtein

PYTHON = PythonBackend()
NUMPY = NumpyBackend()


def bits(value: float) -> bytes:
    """The exact IEEE-754 representation (0.0 == -0.0 must not hide)."""
    return struct.pack("<d", value)


def assert_weights_bit_identical(reference, candidate):
    assert list(reference.keys()) == list(candidate.keys())
    for key, value in reference.items():
        assert bits(value) == bits(candidate[key]), \
            (key, value, candidate[key])


def generated_block(seed: int, pages: int, alpha: float):
    config = GeneratorConfig(pages_per_name=pages, max_clusters=3,
                             cluster_size_alpha=alpha, vocabulary_seed=7)
    collection = custom_dataset(["Ada Wong"], seed=seed, config=config,
                                cluster_counts={"Ada Wong": 2})
    block = collection.collections[0]
    pipeline = EntityResolver(ResolverConfig()).pipeline_for(collection)
    return block, pipeline.extract_block(block)


block_inputs = st.tuples(st.integers(0, 10_000), st.integers(2, 12),
                         st.floats(1.0, 2.5))


class TestScoreMatrixParity:
    @settings(max_examples=15, deadline=None)
    @given(block_inputs)
    def test_full_battery_matrices_bit_identical(self, inputs):
        seed, pages, alpha = inputs
        block, features = generated_block(seed, pages, alpha)
        ids = block.page_ids()
        battery = full_battery()
        reference = PYTHON.block_scores(ids, features, battery)
        candidate = NUMPY.block_scores(ids, features, battery)
        assert reference.keys() == candidate.keys()
        for name in reference:
            assert_weights_bit_identical(reference[name], candidate[name])

    @settings(max_examples=10, deadline=None)
    @given(block_inputs)
    def test_graphs_bit_identical(self, inputs):
        seed, pages, alpha = inputs
        block, features = generated_block(seed, pages, alpha)
        functions = default_functions()
        reference = batched_similarity_graphs(block, features, functions,
                                              backend="python")
        candidate = batched_similarity_graphs(block, features, functions,
                                              backend="numpy")
        assert list(reference) == list(candidate) == [
            function.name for function in functions]
        for name in reference:
            assert reference[name].nodes == candidate[name].nodes
            assert_weights_bit_identical(reference[name].weights,
                                         candidate[name].weights)

    @settings(max_examples=10, deadline=None)
    @given(block_inputs)
    def test_one_vs_many_bit_identical(self, inputs):
        seed, pages, alpha = inputs
        block, features = generated_block(seed, pages, alpha)
        pages_list = [features[doc_id] for doc_id in block.page_ids()]
        new, others = pages_list[0], pages_list[1:]
        for function in full_battery():
            reference = PYTHON.pair_scores(function, new, others)
            candidate = NUMPY.pair_scores(function, new, others)
            assert [bits(value) for value in reference] == \
                [bits(value) for value in candidate], function.name


class TestClusteringParity:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 1_000), st.integers(4, 10))
    def test_fit_predict_clusterings_identical(self, seed, pages):
        config = GeneratorConfig(pages_per_name=pages, max_clusters=3,
                                 vocabulary_seed=7)
        collection = custom_dataset(["Ada Wong", "Bo Chen"], seed=seed,
                                    config=config)

        def resolve(backend: str):
            resolver_config = ResolverConfig(backend=backend)
            model = EntityResolver(resolver_config).fit(collection,
                                                        training_seed=0)
            resolution = model.evaluate_collection(collection)
            return [
                (entry.query_name,
                 sorted(tuple(sorted(cluster))
                        for cluster in entry.predicted),
                 bits(entry.report.fp), bits(entry.report.f1))
                for entry in resolution.blocks
            ]

        assert resolve("python") == resolve("numpy")


class TestBatchedStringKernels:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.text(alphabet="ab/.-xz09", max_size=70), max_size=8))
    def test_pairwise_levenshtein_matches_scalar(self, paths):
        distances = _pairwise_path_distances(paths)
        for i, left in enumerate(paths):
            for j, right in enumerate(paths):
                if i < j:
                    expected = levenshtein(left, right)
                    assert distances[i, j] == expected
                    assert distances[j, i] == expected
