"""Property-based tests for core learning components."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accuracy import RegionAccuracyProfile
from repro.core.regions import EqualWidthRegions, KMeansRegions
from repro.core.thresholds import learn_threshold
from repro.ml.kmeans import kmeans_1d

values = st.floats(min_value=0.0, max_value=1.0)
labeled = st.lists(st.tuples(values, st.booleans()), min_size=1, max_size=60)


class TestThresholdProperties:
    @given(labeled)
    def test_accuracy_at_least_majority_class(self, data):
        learned = learn_threshold(data)
        n_positive = sum(1 for _, label in data if label)
        majority = max(n_positive, len(data) - n_positive) / len(data)
        # Constant rules (always/never link) are candidates, so the learned
        # rule is never worse than predicting the majority class.
        assert learned.training_accuracy >= majority - 1e-12

    @given(labeled)
    def test_reported_accuracy_matches_decisions(self, data):
        learned = learn_threshold(data)
        correct = sum(1 for value, label in data
                      if learned.decide(value) == label)
        assert learned.training_accuracy == correct / len(data)

    @given(labeled)
    def test_exhaustive_optimality(self, data):
        learned = learn_threshold(data)
        sorted_values = sorted({value for value, _ in data})
        # Candidate thresholds: always/never link, the values themselves
        # (>= semantics) and the midpoints between consecutive values.
        candidates = [0.0, 1.1] + sorted_values
        candidates.extend((a + b) / 2 for a, b in
                          zip(sorted_values, sorted_values[1:]))
        best = max(sum(1 for v, lab in data if (v >= c) == lab)
                   for c in candidates)
        achieved = round(learned.training_accuracy * len(data))
        assert achieved == best


class TestKMeansProperties:
    @given(st.lists(values, min_size=1, max_size=50),
           st.integers(min_value=1, max_value=10))
    def test_centers_sorted_and_within_range(self, data, k):
        model = kmeans_1d(data, k)
        assert list(model.centers) == sorted(model.centers)
        assert min(data) - 1e-9 <= model.centers[0]
        assert model.centers[-1] <= max(data) + 1e-9

    @given(st.lists(values, min_size=1, max_size=50),
           st.integers(min_value=1, max_value=10))
    def test_k_bounded_by_distinct_values(self, data, k):
        model = kmeans_1d(data, k)
        assert model.k <= len(set(data))
        assert model.k <= k

    @settings(max_examples=40)
    @given(st.lists(values, min_size=2, max_size=40),
           st.integers(min_value=1, max_value=8))
    def test_assignment_is_nearest_center(self, data, k):
        model = kmeans_1d(data, k)
        for value in data:
            assigned = model.assign(value)
            distances = [abs(center - value) for center in model.centers]
            assert distances[assigned] <= min(distances) + 1e-9


class TestRegionProfileProperties:
    @given(labeled, st.integers(min_value=1, max_value=15))
    def test_probabilities_are_probabilities(self, data, k):
        profile = RegionAccuracyProfile(EqualWidthRegions(k), data)
        for value, _ in data:
            assert 0.0 <= profile.link_probability(value) <= 1.0

    @given(labeled)
    def test_kmeans_regions_cover_all_values(self, data):
        raw_values = [value for value, _ in data]
        regions = KMeansRegions(raw_values, k=5)
        for value in raw_values:
            index = regions.assign(value)
            assert 0 <= index < regions.n_regions

    @given(labeled, st.integers(min_value=1, max_value=15))
    def test_region_counts_sum_to_sample_size(self, data, k):
        profile = RegionAccuracyProfile(EqualWidthRegions(k), data)
        total = sum(profile.region_stats(i).n_pairs
                    for i in range(profile.n_regions))
        assert total == len(data)
