#!/usr/bin/env python
"""Web people search: inspect one ambiguous name in depth.

This is the scenario the paper's introduction motivates: a user searches
for "William Cohen" and the engine must group the result pages by real
person.  The example shows the intermediate artifacts a practitioner
would inspect: extracted features, per-function similarity distributions,
learned thresholds, region accuracies, and the final grouping with its
quality against ground truth.

Run:
    python examples/web_people_search.py
"""

from repro import EntityResolver, ResolverConfig, www05_like
from repro.core.labels import TrainingSample
from repro.core.resolver import compute_similarity_graphs
from repro.core.thresholds import learn_threshold
from repro.experiments.figures import figure1_series
from repro.experiments.reporting import format_region_series
from repro.experiments.runner import ExperimentContext
from repro.metrics.clusterings import clustering_from_assignments
from repro.ml.sampling import sample_training_pairs
from repro.similarity.functions import ALL_FUNCTION_NAMES, default_functions

QUERY = "William Cohen"


def main() -> None:
    dataset = www05_like(seed=1, pages_per_name=60, names=[QUERY])
    block = dataset.by_name(QUERY)
    print(f"Query: {QUERY!r} — {len(block)} result pages, "
          f"{block.n_persons()} real persons\n")

    resolver = EntityResolver(ResolverConfig())
    pipeline = resolver.pipeline_for(dataset)
    features = pipeline.extract_block(block)

    sample_page = block.pages[0]
    bundle = features[sample_page.doc_id]
    print(f"Extracted features of {sample_page.doc_id} ({sample_page.url}):")
    print(f"  most frequent name : {bundle.most_frequent_name!r}")
    print(f"  closest to query   : {bundle.closest_name_to_query!r}")
    print(f"  organizations      : {dict(bundle.organizations)}")
    print(f"  other persons      : {dict(bundle.other_persons)}")
    print(f"  concepts           : {sorted(bundle.concept_set)[:4]}...")
    print(f"  TF-IDF terms       : {len(bundle.tfidf)}\n")

    graphs = compute_similarity_graphs(block, features, default_functions())
    training = TrainingSample.from_pairs(
        sample_training_pairs(block, fraction=0.1, seed=0))

    print("Per-function similarity statistics and learned thresholds:")
    print(f"  {'fn':<4} {'mean':>7} {'max':>7} {'threshold':>10} {'train-acc':>10}")
    for name in ALL_FUNCTION_NAMES:
        values = graphs[name].values()
        learned = learn_threshold(training.labeled_values(graphs[name]))
        mean_value = sum(values) / len(values)
        print(f"  {name:<4} {mean_value:>7.3f} {max(values):>7.3f} "
              f"{learned.threshold:>10.3f} {learned.training_accuracy:>10.3f}")

    context = ExperimentContext.prepare(dataset, pipeline=pipeline)
    points = figure1_series(context, function_name="F3", query_name=QUERY,
                            seed=0)
    print()
    print(format_region_series(
        points, title="Region accuracies of F3 (k-means regions)"))

    model = resolver.fit(block, training_seed=0, graphs=graphs)
    resolution = model.evaluate_block(block, graphs=graphs)
    truth = clustering_from_assignments(block.ground_truth())
    print(f"\nWinning layer: {resolution.chosen_layer}")
    print(f"Found {len(resolution.predicted)} groups "
          f"(ground truth: {len(truth)})")
    print(f"Fp = {resolution.report.fp:.4f}, "
          f"pairwise F = {resolution.report.f1:.4f}, "
          f"Rand = {resolution.report.rand:.4f}")

    largest = max(resolution.predicted, key=len)
    print(f"\nLargest group ({len(largest)} pages): "
          f"{sorted(largest)[:6]}...")


if __name__ == "__main__":
    main()
