#!/usr/bin/env python
"""Compare the paper's combiner against the classifier-combination zoo.

Runs best-graph selection (the paper's C10), accuracy-weighted averaging
(W) and the related-work baselines — majority/weighted voting, dynamic
classifier selection, clustering-and-selection, and the trained/oracle
single-function references — under the identical 5-run protocol.

Run:
    python examples/combiner_comparison.py
"""

from repro.baselines import (
    ClusteringSelectionBaseline,
    DynamicSelectionBaseline,
    MajorityVoteBaseline,
    OracleBestFunctionBaseline,
    TrainedBestFunctionBaseline,
    WeightedVoteBaseline,
)
from repro.core.config import table2_config
from repro.corpus.datasets import www05_like
from repro.experiments.reporting import format_bar_chart, format_table
from repro.experiments.runner import ExperimentContext, run_baseline, run_config


def main() -> None:
    print("Preparing a WWW'05-like dataset (6 names x 40 pages)...\n")
    dataset = www05_like(
        seed=1, pages_per_name=40,
        names=["William Cohen", "Andrew Mccallum", "Tom Mitchell",
               "Lynn Voss", "Adam Cheyer", "Fernando Pereira"])
    context = ExperimentContext.prepare(dataset)
    seeds = context.seeds(n_runs=3)

    results = {}
    results["best-graph (paper C10)"] = run_config(
        context, table2_config("C10"), seeds).mean()
    results["weighted-average (paper W)"] = run_config(
        context, table2_config("W"), seeds).mean()
    for baseline in (TrainedBestFunctionBaseline(), MajorityVoteBaseline(),
                     WeightedVoteBaseline(), DynamicSelectionBaseline(),
                     ClusteringSelectionBaseline(),
                     OracleBestFunctionBaseline()):
        results[baseline.name] = run_baseline(context, baseline, seeds).mean()

    rows = [[label, report.fp, report.f1, report.rand]
            for label, report in sorted(results.items(),
                                        key=lambda kv: -kv[1].fp)]
    print(format_table(["strategy", "Fp", "F", "Rand"], rows,
                       title="Combination strategies, best first"))

    print()
    print(format_bar_chart({label: report.fp
                            for label, report in results.items()},
                           title="Fp by strategy"))

    print("\nReading: per-block best-graph selection wins because the "
          "winning (function, criterion) pair differs per name; fusion "
          "methods average away exactly that signal.")


if __name__ == "__main__":
    main()
