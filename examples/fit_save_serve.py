#!/usr/bin/env python
"""Fit → save → load → serve, plus a custom registry backend.

Demonstrates the two pillars of the train/serve split:

1. **Persistence** — fit a ``ResolverModel`` on labeled data, save it to
   JSON, reload it in a (simulated) serving process, and verify the
   reloaded model produces bit-identical predictions on unlabeled pages.
2. **Extension** — register a custom combiner through the plugin registry
   (``@register_combiner``) and use it via ``ResolverConfig`` without
   touching ``repro.core``.  The saved model records the combiner by
   name, so any process that imports the combiner's module can load it.

Run:
    python examples/fit_save_serve.py
"""

import tempfile
from pathlib import Path

from repro import EntityResolver, ResolverConfig, ResolverModel, www05_like
from repro.core import register_combiner
from repro.core.combination import (
    CombinationResult,
    Combiner,
    average_probabilities,
    thresholded_result,
)


@register_combiner("top3_average")
class Top3AverageCombiner(Combiner):
    """Average only the three most accurate layers, cut at 0.5.

    A deliberately simple custom backend: no training-time learning beyond
    what the layers already carry, so ``fit_params`` stays empty and
    ``apply`` equals ``combine``.
    """

    name = "top3_average"

    def combine(self, layers, training) -> CombinationResult:
        return self.apply(layers, {})

    def apply(self, layers, params) -> CombinationResult:
        if not layers:
            raise ValueError("cannot combine zero decision layers")
        top = sorted(layers, key=lambda layer: -layer.graph_accuracy)[:3]
        combined = average_probabilities(top, [1.0] * len(top))
        return thresholded_result(list(top[0].graph.nodes), combined, 0.5)


def main() -> None:
    dataset = www05_like(seed=1, pages_per_name=40)
    names = dataset.query_names()[:4]
    train = www05_like(seed=1, pages_per_name=40, names=names)

    print("=== 1. persistence ============================================")
    model = EntityResolver(ResolverConfig()).fit(train, training_seed=0)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "resolver_model.json"
        model.save(path)
        print(f"saved model: {path.stat().st_size / 1024:.1f} KiB, "
              f"{len(model.blocks)} fitted blocks")

        served = ResolverModel.load(path)  # the "serving process"
        # The collection carries vocabulary metadata, so the served model
        # rebuilds its extraction pipeline on demand — no labels read.
        live = model.predict(train)
        reloaded = served.predict(train)
        for name in names:
            assert (live.by_name(name).predicted
                    == reloaded.by_name(name).predicted), name
        print("reloaded model predicts bit-identically on all "
              f"{len(names)} blocks\n")

    print("=== 2. custom combiner via the registry =======================")
    config = ResolverConfig(combiner="top3_average")  # validates via registry
    custom = EntityResolver(config).fit(train, training_seed=0)
    scored = custom.evaluate(train)
    baseline = model.evaluate(train)
    print(f"{'combiner':<16} {'mean Fp':>8} {'mean F':>8}")
    for label, result in (("best_graph", baseline), ("top3_average", scored)):
        mean = result.mean_report()
        print(f"{label:<16} {mean.fp:>8.4f} {mean.f1:>8.4f}")
    print("\nThe custom backend was registered with @register_combiner and "
          "picked up by ResolverConfig validation, EntityResolver.fit and "
          "ResolverModel serialization — no core module was edited.")


if __name__ == "__main__":
    main()
