#!/usr/bin/env python
"""Region-based accuracy estimation, hands on (paper §IV-A / Figure 1).

Walks through the paper's core mechanism for one name and one function:
how the similarity-value space is partitioned (equal-width vs k-means),
what the per-region link-existence accuracies look like, where the plain
threshold loses information, and how much each function's regions *know*
about co-reference (information gain — the paper's §VII entropy-based
future-work direction, implemented in this repo).

Run:
    python examples/region_analysis.py
"""

from repro import www05_like
from repro.core.accuracy import RegionAccuracyProfile
from repro.core.entropy import information_gain, value_entropy
from repro.core.labels import TrainingSample
from repro.core.regions import fit_regions
from repro.core.thresholds import learn_threshold
from repro.experiments.reporting import format_region_series, format_table
from repro.experiments.figures import RegionAccuracyPoint
from repro.experiments.runner import ExperimentContext
from repro.ml.sampling import sample_training_pairs
from repro.similarity.functions import ALL_FUNCTION_NAMES

QUERY = "Andrew Mccallum"
FUNCTION = "F5"  # organizations overlap: zero-heavy, non-monotone accuracy


def region_points(profile, regions):
    points = []
    for index in range(profile.n_regions):
        low, high = regions.bounds(index)
        stats = profile.region_stats(index)
        points.append(RegionAccuracyPoint(
            low=low, high=high, center=(low + high) / 2,
            accuracy=stats.accuracy, n_training_pairs=stats.n_pairs))
    return points


def main() -> None:
    dataset = www05_like(seed=1, pages_per_name=60, names=[QUERY])
    context = ExperimentContext.prepare(dataset)
    block = context.collection.by_name(QUERY)
    graph = context.graphs_by_name[QUERY][FUNCTION]

    training = TrainingSample.from_pairs(
        sample_training_pairs(block, fraction=0.1, seed=0))
    labeled = training.labeled_values(graph)
    values = [value for value, _ in labeled]

    learned = learn_threshold(labeled)
    print(f"{FUNCTION} on {QUERY!r}: {len(labeled)} training pairs, "
          f"link prior {training.link_prior():.3f}")
    print(f"learned threshold: {learned.threshold:.3f} "
          f"(training accuracy {learned.training_accuracy:.3f})\n")

    for method in ("equal_width", "kmeans"):
        regions = fit_regions(method, values, k=10)
        profile = RegionAccuracyProfile(regions, labeled)
        print(format_region_series(
            region_points(profile, regions),
            title=f"{method} regions — accuracy of link existence"))
        gain = information_gain(regions, labeled)
        print(f"information gain I(region; link) = {gain:.4f} bits\n")

    print("Reading: pairs with ZERO organization overlap are often still")
    print("the same person (missing info), and the low region's accuracy")
    print("reflects that; a single threshold is forced to call the whole")
    print("low range 'different person'.\n")

    rows = []
    for name in ALL_FUNCTION_NAMES:
        function_graph = context.graphs_by_name[QUERY][name]
        function_labeled = training.labeled_values(function_graph)
        function_values = [value for value, _ in function_labeled]
        regions = fit_regions("kmeans", function_values, k=10)
        rows.append([
            name,
            value_entropy(function_graph),
            information_gain(regions, function_labeled),
            learn_threshold(function_labeled).training_accuracy,
        ])
    rows.sort(key=lambda row: -row[2])
    print(format_table(
        ["fn", "value entropy (bits)", "info gain (bits)", "thr. accuracy"],
        rows, title="Function informativeness on this block, best first"))


if __name__ == "__main__":
    main()
