#!/usr/bin/env python
"""Build a custom synthetic corpus and study feature informativeness.

Shows the generator's knobs: fixed per-name traits let you construct
controlled conditions (e.g. "URLs are perfectly informative" vs "half the
pages lack organizations") and watch how individual similarity functions
respond — the heterogeneity at the heart of the paper's argument.

Run:
    python examples/custom_corpus.py
"""

from repro.core.config import ResolverConfig
from repro.corpus.datasets import custom_dataset
from repro.corpus.generator import GeneratorConfig, NameTraits
from repro.experiments.runner import ExperimentContext, run_config
from repro.similarity.functions import ALL_FUNCTION_NAMES

SCENARIOS = {
    "reliable-domains": NameTraits(
        p_home_domain=0.95, p_missing_orgs=0.5, p_missing_concepts=0.4,
        name_confusion=0.15, boilerplate_rate=0.05),
    "missing-entities": NameTraits(
        p_home_domain=0.3, p_missing_orgs=0.9, p_missing_concepts=0.8,
        name_confusion=0.15, boilerplate_rate=0.1),
    "boilerplate-heavy": NameTraits(
        p_home_domain=0.5, p_missing_orgs=0.3, p_missing_concepts=0.2,
        name_confusion=0.15, boilerplate_rate=0.45, noise_word_rate=0.3),
}

PROBE_FUNCTIONS = ("F2", "F5", "F8")


def main() -> None:
    print("Scenario sweep: one fixed trait profile per corpus; per-function")
    print("Fp of three probe functions (F2=URL, F5=orgs, F8=TF-IDF):\n")

    header = f"{'scenario':<20}" + "".join(f"{fn:>9}" for fn in PROBE_FUNCTIONS)
    print(header)
    print("-" * len(header))

    for label, traits in SCENARIOS.items():
        config = GeneratorConfig(pages_per_name=40, fixed_traits=traits)
        dataset = custom_dataset(
            ["Alex Murphy", "Ellen Ripley"], seed=7, config=config,
            cluster_counts={"Alex Murphy": 6, "Ellen Ripley": 12},
            dataset_name=label)
        context = ExperimentContext.prepare(dataset)
        seeds = context.seeds(n_runs=2)

        row = f"{label:<20}"
        for function_name in PROBE_FUNCTIONS:
            resolver_config = ResolverConfig(
                function_names=(function_name,), criteria=("threshold",))
            score = run_config(context, resolver_config, seeds).mean().fp
            row += f"{score:>9.4f}"
        print(row)

    print("\nEach scenario rewards a different function — this is why the")
    print("paper estimates per-region accuracy and combines functions")
    print("instead of betting on one.")

    print("\nFull battery (C10 setting) on the hardest scenario:")
    config = GeneratorConfig(pages_per_name=40,
                             fixed_traits=SCENARIOS["missing-entities"])
    dataset = custom_dataset(
        ["Alex Murphy", "Ellen Ripley"], seed=7, config=config,
        cluster_counts={"Alex Murphy": 6, "Ellen Ripley": 12})
    context = ExperimentContext.prepare(dataset)
    combined = run_config(context, ResolverConfig(),
                          context.seeds(n_runs=2)).mean()
    print(f"  combined Fp = {combined.fp:.4f} "
          f"(vs probe functions above)")
    print("\nAll ten available functions: " + ", ".join(ALL_FUNCTION_NAMES))


if __name__ == "__main__":
    main()
