#!/usr/bin/env python
"""Resolve a mixed page universe with a generic registered blocker.

The paper's pipeline blocks pages by the ambiguous query name they were
retrieved for — natural for search-organized collections, impossible for
a mixed universe (a crawl, an upload queue) that is not pre-grouped.
This example shows the general path end to end:

1. **Blocking quality** — run the three built-in blockers over the flat
   page universe and compare pair completeness (recall of true
   co-referent pairs) against reduction ratio (fraction of pairs
   pruned).
2. **Candidate-driven resolution** — fit and evaluate with
   ``ResolverConfig(blocker="token")``: the pipeline's ``block`` stage
   partitions the blocker's candidate pairs into connected components,
   and every downstream quadratic step scores only candidate pairs
   (the per-block masks flow through similarity, runtime tasks and
   serving).
3. **A custom blocker** — register a domain-aware blocker with
   ``@register_blocker`` and use it as a config value, no pipeline
   code touched.

Run:
    python examples/generic_blocking.py
"""

from repro import EntityResolver, ResolverConfig, www05_like
from repro.blocking import (
    Blocker,
    BlockingResult,
    QueryNameBlocker,
    SortedNeighborhoodBlocker,
    TokenBlocker,
)
from repro.blocking.base import pairs_within
from repro.core.registry import register_blocker


@register_blocker("domain")
class DomainBlocker(Blocker):
    """Candidates = pairs of pages hosted on the same web domain."""

    name = "domain"

    def block(self, pages):
        page_list = list(pages)
        by_domain: dict[str, list[str]] = {}
        for page in page_list:
            by_domain.setdefault(page.domain, []).append(page.doc_id)
        result = BlockingResult(pages=page_list)
        for ids in by_domain.values():
            result.candidate_pairs.update(pairs_within(ids))
        return result


def main() -> None:
    dataset = www05_like(seed=7, pages_per_name=24)
    universe = list(dataset.all_pages())  # flat: no pre-grouping used

    print(f"universe: {len(universe)} pages, "
          f"{len(dataset)} underlying names\n")

    print("blocking quality on the mixed universe "
          "(completeness vs reduction):")
    blockers = [QueryNameBlocker(), TokenBlocker(),
                SortedNeighborhoodBlocker(window=8), DomainBlocker()]
    for blocker in blockers:
        result = blocker.block(universe)
        print(f"  {blocker.name:<20} pair_completeness="
              f"{result.pair_completeness():.3f}  "
              f"reduction_ratio={result.reduction_ratio():.3f}  "
              f"candidates={result.n_candidates()}")

    print("\nfit + evaluate with the token blocker "
          "(candidate pairs only):")
    config = ResolverConfig(blocker="token")
    model = EntityResolver(config).fit(dataset, training_seed=0)
    print(f"  fitted {len(model.blocks)} candidate component(s): "
          f"{', '.join(model.block_names())}")
    print(f"  {model.fit_stats.summary()}")
    resolution = model.evaluate_collection(dataset)
    mean = resolution.mean_report()
    print(f"  mean Fp = {mean.fp:.4f}, F = {mean.f1:.4f}")

    print("\nthe custom 'domain' blocker is just another config value:")
    domain_model = EntityResolver(
        ResolverConfig(blocker="domain")).fit(dataset, training_seed=0)
    print(f"  fitted {len(domain_model.blocks)} component(s) "
          f"under blocker={domain_model.config.blocker!r}")


if __name__ == "__main__":
    main()
