#!/usr/bin/env python
"""Quickstart: fit a resolver model once, then resolve unlabeled pages.

Builds a small WWW'05-like dataset, fits the paper's Algorithm 1 machinery
on it (``EntityResolver.fit`` is the only step that reads ground-truth
labels), predicts on an *unlabeled* copy of the same pages with the fitted
``ResolverModel``, and finally scores the predictions via the explicit
``evaluate`` path.

Run:
    python examples/quickstart.py
"""

from repro import EntityResolver, ResolverConfig, www05_like
from repro.corpus.datasets import surname


def main() -> None:
    print("Generating a WWW'05-like dataset (12 ambiguous names)...")
    dataset = www05_like(seed=1, pages_per_name=50)
    summary = dataset.summary()
    print(f"  {summary['names']} names, {summary['pages']} pages, "
          f"{summary['min_clusters']}-{summary['max_clusters']} "
          "true persons per name\n")

    print("Fitting (the only step that consumes labels)...")
    model = EntityResolver(ResolverConfig()).fit(dataset, training_seed=0)

    print("Predicting on an unlabeled copy of the pages...\n")
    prediction = model.predict(dataset.without_labels())

    result = model.evaluate(dataset)  # separate, label-consuming path

    print(f"{'name':<12} {'Fp':>7} {'F':>7} {'Rand':>7} "
          f"{'true':>5} {'found':>6}  winning layer")
    print("-" * 62)
    for block in result.blocks:
        report = block.report
        found = prediction.by_name(block.query_name).n_entities()
        print(f"{surname(block.query_name):<12} "
              f"{report.fp:>7.4f} {report.f1:>7.4f} {report.rand:>7.4f} "
              f"{len(block.truth):>5} {found:>6}  "
              f"{block.chosen_layer}")

    mean = result.mean_report()
    print("-" * 62)
    print(f"{'MEAN':<12} {mean.fp:>7.4f} {mean.f1:>7.4f} {mean.rand:>7.4f}")
    print("\nNote how the winning (function, criterion) layer differs per "
          "name — the paper's key observation that no single similarity "
          "function dominates.  The fitted model can be persisted with "
          "model.save(path) and served without refitting (see "
          "examples/fit_save_serve.py).")


if __name__ == "__main__":
    main()
