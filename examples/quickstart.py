#!/usr/bin/env python
"""Quickstart: resolve an ambiguous person name end to end.

Builds a small WWW'05-like dataset, runs the paper's Algorithm 1 with the
default configuration (all ten similarity functions, the full decision-
criteria battery, best-graph combination, transitive-closure clustering),
and prints per-name quality plus which decision layer won each block.

Run:
    python examples/quickstart.py
"""

from repro import EntityResolver, ResolverConfig, www05_like
from repro.corpus.datasets import surname


def main() -> None:
    print("Generating a WWW'05-like dataset (12 ambiguous names)...")
    dataset = www05_like(seed=1, pages_per_name=50)
    summary = dataset.summary()
    print(f"  {summary['names']} names, {summary['pages']} pages, "
          f"{summary['min_clusters']}-{summary['max_clusters']} "
          "true persons per name\n")

    resolver = EntityResolver(ResolverConfig())
    result = resolver.resolve_collection(dataset, training_seed=0)

    print(f"{'name':<12} {'Fp':>7} {'F':>7} {'Rand':>7} "
          f"{'true':>5} {'found':>6}  winning layer")
    print("-" * 62)
    for block in result.blocks:
        report = block.report
        print(f"{surname(block.query_name):<12} "
              f"{report.fp:>7.4f} {report.f1:>7.4f} {report.rand:>7.4f} "
              f"{len(block.truth):>5} {len(block.predicted):>6}  "
              f"{block.chosen_layer}")

    mean = result.mean_report()
    print("-" * 62)
    print(f"{'MEAN':<12} {mean.fp:>7.4f} {mean.f1:>7.4f} {mean.rand:>7.4f}")
    print("\nNote how the winning (function, criterion) layer differs per "
          "name — the paper's key observation that no single similarity "
          "function dominates.")


if __name__ == "__main__":
    main()
