#!/usr/bin/env python
"""The block execution engine: parallel fan-out, caching and RunStats.

Demonstrates the runtime layer (``repro.runtime``) end to end:

1. **Executor selection** — the same experiments workload run serially and
   on a 4-process pool, with bit-identical metrics (the engine's
   determinism guarantee: merge order is block order, workers inherit the
   parent's hash seed via fork).
2. **Similarity caching** — a model serving the same block twice computes
   the quadratic pairwise-similarity step once; ``release_fit_caches``
   drops the per-block state a long-lived server should not retain.
3. **Observability** — every pass reports a ``RunStats`` (wall time,
   pairs scored, cache hit rate, per-block timings).

Run:
    python examples/parallel_runtime.py
"""

from repro import ResolverConfig, www05_like
from repro.core.resolver import EntityResolver
from repro.experiments.runner import ExperimentContext, run_config
from repro.runtime import executor_for_workers

WORKERS = 4


def main() -> None:
    dataset = www05_like(seed=1, pages_per_name=30)

    print("=== 1. serial vs process-pool execution =======================")
    serial_context = ExperimentContext.prepare(dataset)
    print("serial  ", serial_context.stats.summary())
    parallel_context = ExperimentContext.prepare(dataset, workers=WORKERS)
    print("parallel", parallel_context.stats.summary())

    seeds = serial_context.seeds(n_runs=2)
    serial = run_config(serial_context, ResolverConfig(), seeds)
    parallel = run_config(parallel_context, ResolverConfig(), seeds,
                          executor=executor_for_workers(WORKERS))
    assert serial.per_seed_reports == parallel.per_seed_reports
    print(f"protocol metrics identical across executors: "
          f"mean Fp = {serial.metric('fp'):.4f}\n")

    print("=== 2. the shared similarity cache ============================")
    block = dataset.collections[0]
    resolver = EntityResolver(ResolverConfig())
    model = resolver.fit(block, training_seed=0,
                         pipeline=resolver.pipeline_for(dataset))
    model.release_fit_caches()  # start from a cold cache
    for attempt in ("cold", "warm"):
        model.predict_block(block)
        snapshot = model.cache_stats()
        print(f"{attempt} predict: {snapshot.pair_misses} pairs computed, "
              f"{snapshot.pair_hits} served from cache "
              f"(hit rate {snapshot.hit_rate:.0%})")
    model.release_fit_caches()
    print(f"after release_fit_caches: "
          f"{model.cache_stats().n_blocks} cached blocks\n")

    print("=== 3. per-block timings ======================================")
    slowest = sorted(serial_context.stats.per_block_seconds.items(),
                     key=lambda item: -item[1])[:3]
    for name, seconds in slowest:
        print(f"{name:<24} {seconds * 1000:7.1f} ms")
    print("\nChoose --workers ~ physical cores for collection-sized "
          "workloads; see docs/performance.md.")


if __name__ == "__main__":
    main()
