#!/usr/bin/env python
"""Incremental resolution: keep a people-search index fresh.

Simulates the production scenario the paper motivates: an index of
resolved "William Cohen" pages exists, and newly crawled pages arrive one
at a time.  A ``ResolverModel`` is fitted once on the initial crawl (the
only label-consuming step); ``IncrementalResolver.from_model`` adopts the
fitted model without re-training, then assigns each arriving page in
O(pages x functions) — no quadratic re-resolution.

Run:
    python examples/incremental_stream.py
"""

from repro import www05_like
from repro.core import EntityResolver, IncrementalResolver, ResolverConfig
from repro.corpus.documents import NameCollection
from repro.metrics import evaluate_clustering, clustering_from_assignments

QUERY = "William Cohen"
HELD_OUT = 15


def main() -> None:
    dataset = www05_like(seed=1, pages_per_name=60, names=[QUERY])
    block = dataset.by_name(QUERY)
    pages = list(block.pages)
    base = NameCollection(query_name=QUERY, pages=pages[:-HELD_OUT])
    stream = pages[-HELD_OUT:]
    print(f"Initial crawl: {len(base)} pages; "
          f"{len(stream)} pages arrive later.\n")

    batch_resolver = EntityResolver(ResolverConfig())
    pipeline = batch_resolver.pipeline_for(dataset)
    all_features = pipeline.extract_block(block)
    base_features = {page.doc_id: all_features[page.doc_id]
                     for page in base.pages}

    # Fit once on the labeled initial crawl; everything after this line
    # could run in a separate serving process via model.save()/load().
    # Sharing the graphs object between fit and adoption skips the
    # quadratic similarity step the second time.
    from repro.core import compute_similarity_graphs
    from repro.similarity.functions import default_functions

    base_graphs = compute_similarity_graphs(base, base_features,
                                            default_functions())
    model = batch_resolver.fit(base, training_seed=0, graphs=base_graphs)
    resolver = IncrementalResolver.from_model(model, base, base_features,
                                              graphs=base_graphs)
    initial = resolver.clusters()
    print(f"Initial resolution: {len(initial)} entities "
          f"(ground truth in base: "
          f"{len({p.person_id for p in base.pages})})\n")

    print(f"{'page':<12} {'decision':<14} {'P(link)':>8}  correct?")
    print("-" * 48)
    truth = {page.doc_id: page.person_id for page in pages}
    n_correct = 0
    for page in stream:
        assignment = resolver.add_page(all_features[page.doc_id])
        cluster = resolver.clusters().cluster_of(page.doc_id)
        mates = [doc for doc in cluster if doc != page.doc_id]
        if mates:
            same = sum(1 for doc in mates if truth[doc] == page.person_id)
            correct = same * 2 > len(mates)
        else:
            base_persons = {p.person_id for p in base.pages}
            correct = page.person_id not in base_persons
        n_correct += correct
        decision = ("new entity" if assignment.created_new_cluster
                    else f"-> entity #{assignment.cluster_index}")
        print(f"{page.doc_id:<12} {decision:<14} "
              f"{assignment.link_probability:>8.3f}  {'yes' if correct else 'NO'}")

    print(f"\n{n_correct}/{len(stream)} stream pages assigned correctly.")

    final = resolver.clusters()
    full_truth = clustering_from_assignments(truth)
    report = evaluate_clustering(final, full_truth)
    print(f"Final index quality: Fp = {report.fp:.4f}, "
          f"F = {report.f1:.4f}, Rand = {report.rand:.4f}")

    batch_model = EntityResolver(ResolverConfig()).fit(
        block, training_seed=0, features=all_features)
    batch = batch_model.evaluate_block(block, features=all_features)
    print(f"Full batch re-resolution for comparison: "
          f"Fp = {batch.report.fp:.4f}")


if __name__ == "__main__":
    main()
