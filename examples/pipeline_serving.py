#!/usr/bin/env python
"""Compose a custom stage plan, fit, save — then serve online traffic.

Demonstrates the pipeline redesign end to end:

1. **Composition** — register a custom blocking stage with
   ``@register_stage`` and compose a fit plan from registry names
   (``Pipeline.from_names``).  The custom blocker caps every block at
   its first 40 pages — a cheap "index only the head of the crawl"
   policy — and flows through extraction, similarity and fitting
   without touching any of them.
2. **Serving** — save the fitted model, reopen it in a (simulated)
   serving process via ``ResolutionSession.open``, warm the session
   with each name's initial crawl, and stream 100 simulated single-page
   requests through the bounded-LRU request path.

Run:
    python examples/pipeline_serving.py
"""

import tempfile
import time
from pathlib import Path

from repro import EntityResolver, Pipeline, ResolverConfig, www05_like
from repro.core.registry import register_stage
from repro.corpus.documents import NameCollection
from repro.pipeline import Blocks, Corpus, ResolutionSession, Stage

HEAD = 40          # pages per block the custom stage keeps
REQUESTS = 100     # simulated single-page requests to serve


@register_stage("head_blocks")
class HeadBlockingStage(Stage):
    """Block by query name, keeping only each name's first pages."""

    name = "head_blocks"
    consumes = Corpus
    produces = Blocks

    def run(self, corpus, ctx):
        blocks = [NameCollection(query_name=block.query_name,
                                 pages=list(block.pages)[:HEAD])
                  for block in corpus.collection]
        return Blocks(blocks=blocks, source=corpus.collection)


def main() -> None:
    dataset = www05_like(seed=1, pages_per_name=60)
    pipeline = EntityResolver(ResolverConfig()).pipeline_for(dataset)

    print("=== 1. fit through a custom plan ==============================")
    plan = Pipeline.from_names(
        ["head_blocks", "extract", "similarity", "fit"], name="head-fit")
    print(plan.explain())
    model = EntityResolver(ResolverConfig()).fit(dataset, training_seed=0,
                                                 plan=plan)
    print(f"\nfitted {len(model.blocks)} blocks on the first {HEAD} pages "
          f"of each name")
    for entry in model.fit_stage_stats:
        print(f"  {entry.stage:<12} {entry.seconds:8.3f}s "
              f"({entry.consumes} -> {entry.produces})")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "model.json"
        model.save(path)
        print(f"saved: {path.stat().st_size / 1024:.1f} KiB\n")

        print("=== 2. online serving session =============================")
        # The "serving process": load once, then handle request traffic.
        # Size the LRU to the hot-name working set: an evicted name drops
        # its in-memory entity index and rebuilds cold on next contact
        # (a production deployment would re-warm it from a page store).
        session = ResolutionSession.open(path, pipeline=pipeline,
                                         max_blocks=len(dataset))

        # Warm each name with its indexed head, then stream the tail
        # pages round-robin as single-page requests — the shape of live
        # traffic over an existing people-search index.
        streams = []
        for block in dataset:
            pages = list(block.pages)
            session.resolve(pages[:HEAD])
            streams.append(pages[HEAD:])

        served = 0
        new_entities = 0
        latencies = []
        position = 0
        while served < REQUESTS and any(streams):
            stream = streams[position % len(streams)]
            position += 1
            if not stream:
                continue
            page = stream.pop(0)
            started = time.perf_counter()
            assignment = session.resolve(page)[0]
            latencies.append(time.perf_counter() - started)
            new_entities += assignment.created_new_cluster
            served += 1

        mean_ms = sum(latencies) / len(latencies) * 1000
        worst_ms = max(latencies) * 1000
        print(f"served {served} single-page requests: "
              f"{new_entities} founded new entities, "
              f"{served - new_entities} joined existing ones")
        print(f"latency: mean {mean_ms:.2f}ms, max {worst_ms:.2f}ms "
              f"(incremental assignment — no quadratic re-resolution)")
        print(session.stats.summary())


if __name__ == "__main__":
    main()
