#!/usr/bin/env sh
# Smoke test: generate a tiny dataset, fit a resolver model, predict with
# it (labels unused), and score the predictions.  Exercises the full
# fit -> save -> predict lifecycle through the CLI in a few seconds.
#
# Usage: sh scripts/smoke_test.sh
set -eu

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

run() {
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli \
        --pages 12 --seed 3 "$@"
}

echo "== generate =="
run generate --out "$workdir/data.json"

echo "== fit =="
run fit --in "$workdir/data.json" --model "$workdir/model.json"

echo "== predict (unlabeled serving path) =="
run predict --in "$workdir/data.json" --model "$workdir/model.json"

echo "== predict --evaluate =="
run predict --in "$workdir/data.json" --model "$workdir/model.json" --evaluate

echo "smoke test OK"
