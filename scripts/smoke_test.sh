#!/usr/bin/env sh
# Smoke test: generate a tiny dataset, fit a resolver model, predict with
# it (labels unused), and score the predictions — serially and through
# the process-pool executor (--workers 2), which must agree.  Inspect
# the stage plans (pipeline explain) and run the online serving demo
# loop (serve), serially and through the concurrent ServingEngine
# (serve --threads 4, with a mid-stream hot swap).  Exercise the
# generic blocking path (--blocker token) with serial/parallel fit
# parity.  Round-trip a streamed scale corpus (generate --dataset scale
# -> jsonl -> fit -> predict).  Then run the runtime, serving and
# scaling benchmarks at smoke scale and verify they emit well-formed
# BENCH_runtime.json / BENCH_scaling.json.  Exercises the
# full fit -> save -> predict -> serve lifecycle plus the execution
# engine through the CLI in under a minute.
#
# Usage: sh scripts/smoke_test.sh
set -eu

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

run() {
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli \
        --pages 12 --seed 3 "$@"
}

echo "== generate =="
run generate --out "$workdir/data.json"

echo "== generate --dataset scale (streamed jsonl) + fit/predict round trip =="
# The scale path streams blocks straight to disk (block-per-line JSONL)
# and records the synthesized vocabulary sizes in the header metadata so
# fit/predict rebuild the exact lexicon from the file alone.
run generate --dataset scale --names 4 --collision 0.5 \
    --out "$workdir/scale.jsonl" | tee "$workdir/scale_generate.out"
grep -q "streamed jsonl" "$workdir/scale_generate.out" || {
    echo "scale generate did not stream jsonl" >&2; exit 1; }
head -n 1 "$workdir/scale.jsonl" | grep -q '"jsonl-blocks"' || {
    echo "scale.jsonl lacks the jsonl-blocks header" >&2; exit 1; }
run fit --in "$workdir/scale.jsonl" --model "$workdir/model_scale.json"
run predict --in "$workdir/scale.jsonl" \
    --model "$workdir/model_scale.json" --evaluate

echo "== fit =="
run fit --in "$workdir/data.json" --model "$workdir/model.json"

echo "== predict (unlabeled serving path) =="
run predict --in "$workdir/data.json" --model "$workdir/model.json"

echo "== predict --evaluate =="
run predict --in "$workdir/data.json" --model "$workdir/model.json" --evaluate

echo "== pipeline explain =="
run pipeline explain | grep -q "Corpus" || {
    echo "pipeline explain did not print the artifact chain" >&2; exit 1; }
run pipeline explain

echo "== serve (ResolutionSession demo loop) =="
run serve --in "$workdir/data.json" --model "$workdir/model.json" \
    --requests 6 | tee "$workdir/serve.out"
grep -q "\[session\]" "$workdir/serve.out" || {
    echo "serve did not print a session summary" >&2; exit 1; }

echo "== serve --threads 4 (concurrent ServingEngine) =="
# A second fit (different seed) doubles as the hot-swap generation; the
# engine must finish every request, report latency percentiles, and
# perform exactly one swap.
run --seed 4 fit --in "$workdir/data.json" --model "$workdir/model_b.json"
run serve --in "$workdir/data.json" --model "$workdir/model.json" \
    --requests 16 --threads 4 --batch-window 2 \
    --swap-model "$workdir/model_b.json" | tee "$workdir/serve_mt.out"
grep -q "Load report (4 threads)" "$workdir/serve_mt.out" || {
    echo "concurrent serve did not print a load report" >&2; exit 1; }
grep -q "\[engine\]" "$workdir/serve_mt.out" || {
    echo "concurrent serve did not print an engine summary" >&2; exit 1; }
grep -q "p99" "$workdir/serve_mt.out" || {
    echo "concurrent serve did not report latency percentiles" >&2; exit 1; }
grep -q "1 swaps" "$workdir/serve_mt.out" || {
    echo "concurrent serve did not hot-swap the model" >&2; exit 1; }
grep -q "^16  *0  " "$workdir/serve_mt.out" || {
    echo "concurrent serve lost requests" >&2; exit 1; }

echo "== fit/predict --workers 2 + --backend numpy (engine parity) =="
# Comparing fits across *separate interpreter processes* needs a pinned
# hash seed: downstream stages still iterate sets, and per-process hash
# randomization can permute float additions in the last ulp.  (Within
# one process, serial vs parallel vs either scoring backend is
# bit-identical without this — pool workers fork and inherit the
# parent's hash seed, and backends share a canonical fold order.)
( export PYTHONHASHSEED=0
  run fit --in "$workdir/data.json" --model "$workdir/model_serial.json"
  run --workers 2 fit --in "$workdir/data.json" \
      --model "$workdir/model_workers2.json"
  run --backend numpy fit --in "$workdir/data.json" \
      --model "$workdir/model_numpy.json" )
run --workers 2 predict --in "$workdir/data.json" \
    --model "$workdir/model_workers2.json" --evaluate
run --backend numpy predict --in "$workdir/data.json" \
    --model "$workdir/model_numpy.json" --evaluate
# Parallel fitting and the vectorized backend must learn exactly the
# serial model (fitted state is JSON, so byte-compare the block
# payloads).
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python - "$workdir" <<'PY'
import json, sys
serial = json.load(open(sys.argv[1] + "/model_serial.json"))
parallel = json.load(open(sys.argv[1] + "/model_workers2.json"))
vectorized = json.load(open(sys.argv[1] + "/model_numpy.json"))
assert serial["blocks"] == parallel["blocks"], \
    "serial and --workers 2 fits diverged"
assert serial["blocks"] == vectorized["blocks"], \
    "python and numpy backend fits diverged"
print("serial, --workers 2 and --backend numpy fitted state identical")
PY

echo "== fit/predict --blocker token (generic blocking path) =="
# Generic blocking re-blocks the corpus into candidate components and
# scores only candidate pairs; serial and --workers 2 fits must still
# learn the identical model, and the saved blocker choice must drive
# the predict pass.
( export PYTHONHASHSEED=0
  run --blocker token fit --in "$workdir/data.json" \
      --model "$workdir/model_token.json"
  run --blocker token --workers 2 fit --in "$workdir/data.json" \
      --model "$workdir/model_token_w2.json" )
run predict --in "$workdir/data.json" \
    --model "$workdir/model_token.json" --evaluate
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python - "$workdir" <<'PY'
import json, sys
serial = json.load(open(sys.argv[1] + "/model_token.json"))
parallel = json.load(open(sys.argv[1] + "/model_token_w2.json"))
assert serial["config"]["blocker"] == "token", \
    "--blocker token was not saved into the fitted model"
assert serial["blocks"] == parallel["blocks"], \
    "--blocker token serial and --workers 2 fits diverged"
assert all(name.startswith("~block:") for name in serial["blocks"]), \
    "token blocking did not produce synthetic candidate components"
print("--blocker token fitted state identical across executors")
PY

echo "== runtime benchmark emits BENCH_runtime.json =="
REPRO_BENCH_PAGES=16 REPRO_BENCH_RUNS=2 \
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/test_bench_runtime.py -q
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python - <<'PY'
import json, sys
try:
    payload = json.load(open("BENCH_runtime.json"))
except (OSError, json.JSONDecodeError) as error:
    sys.exit(f"BENCH_runtime.json missing or malformed: {error}")
runs = payload.get("runs")
if payload.get("benchmark") != "runtime" or not runs:
    sys.exit("BENCH_runtime.json has no runtime runs")
last = runs[-1]
for key in ("speedup_vs_seed", "seed_path_seconds",
            "engine_parallel_seconds", "serving_cache_hit_rate",
            "deterministic", "backend_speedup_ratio",
            "backends_bit_identical", "blocking_reduction_ratio",
            "blocking_pair_completeness", "masked_speedup_ratio",
            "masked_matches_dense", "prepare_cache_hit_rate",
            "requested_workers", "effective_workers", "available_cores",
            "host_cores", "cpuset_limited", "fork_waves",
            "parallel_speedup_ratio"):
    if key not in last:
        sys.exit(f"BENCH_runtime.json record lacks {key!r}")
if not last["deterministic"]:
    sys.exit("runtime bench recorded a non-deterministic run")
if last["effective_workers"] != min(last["requested_workers"],
                                    last["available_cores"]):
    sys.exit("effective_workers does not honor the core cap")
if last["available_cores"] > 1 and last["effective_workers"] == 1:
    sys.exit(f"--workers {last['requested_workers']} degraded to serial "
             f"with {last['available_cores']} cores available")
if not last["prepare_cache_hit_rate"] > 0.0:
    sys.exit("retained prepare cache served no predict calls")
if not last["backends_bit_identical"]:
    sys.exit("runtime bench recorded diverging scoring backends")
if last["blocking_pair_completeness"] != 1.0:
    sys.exit("query-name blocking lost true pairs on the mixed universe")
if not last["masked_matches_dense"]:
    sys.exit("masked scoring diverged from dense scoring")
print(f"BENCH_runtime.json OK: {len(runs)} run(s), last speedup "
      f"{last['speedup_vs_seed']:.2f}x, backend ratio "
      f"{last['backend_speedup_ratio']:.2f}x, masked ratio "
      f"{last['masked_speedup_ratio']:.2f}x")
PY

echo "== serving benchmark records a serving scenario =="
# Smoke scale gates the QPS comparison off (needs scoring-bound
# requests); serial-replay bit-identity and the hot swap still assert.
REPRO_BENCH_SERVING_PAGES=24 REPRO_BENCH_SERVING_REPS=1 \
    REPRO_BENCH_SERVING_THREADS=4 \
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/test_bench_serving.py -q
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python - <<'PY'
import json, sys
payload = json.load(open("BENCH_runtime.json"))
serving = [run for run in payload.get("runs", [])
           if run.get("scenario") == "serving"]
if not serving:
    sys.exit("BENCH_runtime.json has no serving scenario record")
last = serving[-1]
for key in ("single_thread_qps", "best_multi_thread_qps",
            "multi_over_single_qps_ratio", "runs", "mixed", "swap"):
    if key not in last:
        sys.exit(f"serving record lacks {key!r}")
for label, run in last["runs"].items():
    if not run["replay_identical"]:
        sys.exit(f"serving run {label} diverged from serial replay")
if last["swap"]["failed"] or not last["swap"]["replay_identical"]:
    sys.exit("hot swap lost requests or diverged from serial replay")
print(f"serving scenario OK: {len(last['runs'])} configs, "
      f"multi/single QPS ratio {last['multi_over_single_qps_ratio']:.2f}, "
      f"swap stall {last['swap']['swap_stall_seconds'] * 1000:.2f}ms")
PY

echo "== scaling benchmark emits BENCH_scaling.json =="
REPRO_BENCH_SCALE_SIZES=120,240,480 REPRO_BENCH_SCALE_PPN=8 \
    REPRO_BENCH_SCALE_BLOCKING_PAGES=120 \
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m pytest benchmarks/test_bench_scaling.py -q
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python - <<'PY'
import json, sys
try:
    payload = json.load(open("BENCH_scaling.json"))
except (OSError, json.JSONDecodeError) as error:
    sys.exit(f"BENCH_scaling.json missing or malformed: {error}")
runs = payload.get("runs")
if payload.get("benchmark") != "scaling" or not runs:
    sys.exit("BENCH_scaling.json has no scaling runs")
sizes = runs[-1]["sizes"]
if len(sizes) < 3:
    sys.exit("scaling sweep recorded fewer than 3 sizes")
for entry in sizes:
    for key in ("n_pages", "throughput_pages_per_second", "stage_seconds",
                "generation_stream_peak_bytes", "bcubed_f1_mean",
                "blocking"):
        if key not in entry:
            sys.exit(f"BENCH_scaling.json size entry lacks {key!r}")
peaks = [entry["generation_stream_peak_bytes"] for entry in sizes]
if max(peaks) > 2.5 * min(peaks):
    sys.exit(f"streaming generation peak memory grew with N: {peaks}")
print(f"BENCH_scaling.json OK: {len(sizes)} sizes up to "
      f"{sizes[-1]['n_pages']} pages, throughput "
      f"{sizes[-1]['throughput_pages_per_second']:.0f} pages/s")
PY

echo "smoke test OK"
