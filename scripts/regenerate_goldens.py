"""Regenerate the golden similarity/resolution fixtures.

The goldens freeze, for a small deterministic corpus, the exact
per-function similarity graphs (full battery F1–F14) and the resolved
clusterings + metrics under the default configuration.  The regression
test (``tests/integration/test_golden.py``) recomputes everything from
scratch with *each* scoring backend and compares at tolerance zero —
any numeric drift, from either backend, fails loudly.

Run from the repo root after an *intentional* numeric change::

    PYTHONPATH=src python scripts/regenerate_goldens.py

and commit the updated ``tests/data/golden/similarity_golden.json``
together with the change that motivated it (see ``docs/testing.md``).
JSON serializes floats via ``repr``, which round-trips ``float``
exactly, so the stored values are bit-precise.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
GOLDEN_PATH = REPO_ROOT / "tests" / "data" / "golden" / \
    "similarity_golden.json"

#: The frozen corpus recipe.  Changing any of these regenerates a
#: different golden — keep them stable.
DATASET = {
    "names": ["Ada Wong", "Bo Chen"],
    "seed": 5,
    "pages_per_name": 10,
    "max_clusters": 3,
    "vocabulary_seed": 7,
    "training_seed": 0,
}


def golden_collection():
    """The frozen corpus (seeded generator — identical on every run)."""
    from repro.corpus.datasets import custom_dataset
    from repro.corpus.generator import GeneratorConfig

    config = GeneratorConfig(pages_per_name=DATASET["pages_per_name"],
                             max_clusters=DATASET["max_clusters"],
                             vocabulary_seed=DATASET["vocabulary_seed"])
    return custom_dataset(list(DATASET["names"]), seed=DATASET["seed"],
                          config=config, dataset_name="golden")


def build_golden(backend: str = "python") -> dict:
    """Compute the golden payload from scratch with one backend."""
    from repro.core.config import ResolverConfig
    from repro.core.resolver import EntityResolver
    from repro.similarity.extended import full_battery

    collection = golden_collection()
    config = ResolverConfig(backend=backend)
    resolver = EntityResolver(config)
    pipeline = resolver.pipeline_for(collection)

    graphs = {}
    for block in collection:
        features = pipeline.extract_block(block)
        from repro.core.model import compute_similarity_graphs
        block_graphs = compute_similarity_graphs(
            block, features, full_battery(), backend=backend)
        graphs[block.query_name] = {
            name: [[left, right, value]
                   for (left, right), value in graph.weights.items()]
            for name, graph in block_graphs.items()
        }

    model = resolver.fit(collection,
                         training_seed=DATASET["training_seed"])
    resolution = model.evaluate_collection(collection)
    resolved = {
        entry.query_name: {
            "clusters": sorted(sorted(cluster)
                               for cluster in entry.predicted),
            "fp": entry.report.fp,
            "f1": entry.report.f1,
            "rand": entry.report.rand,
        }
        for entry in resolution.blocks
    }

    return {
        "description": "Frozen similarity graphs (F1-F14) and resolution "
                       "for the golden corpus; tolerance-zero regression "
                       "reference for every scoring backend.",
        "dataset": DATASET,
        "graphs": graphs,
        "resolution": resolved,
    }


def build_golden_pinned(backend: str = "python") -> dict:
    """:func:`build_golden` in a ``PYTHONHASHSEED=0`` subprocess.

    Similarity values are hash-seed-independent (canonical folds), but
    downstream resolution stages may still iterate sets, so the frozen
    clusterings/metrics are only byte-stable under a pinned hash seed —
    the same caveat ``scripts/smoke_test.sh`` pins for.  Both
    regeneration and the regression test build through this helper, so
    they always compare like with like.  JSON round-trips floats via
    ``repr``, bit-exactly.
    """
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "0"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    result = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--emit", backend],
        env=env, capture_output=True, text=True, check=True)
    return json.loads(result.stdout)


def main() -> None:
    payload = build_golden_pinned()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True)
                           + "\n")
    n_values = sum(len(pairs) for block in payload["graphs"].values()
                   for pairs in block.values())
    print(f"wrote {GOLDEN_PATH} ({n_values} frozen similarity values, "
          f"{len(payload['resolution'])} resolved blocks)")


if __name__ == "__main__":
    if len(sys.argv) >= 3 and sys.argv[1] == "--emit":
        json.dump(build_golden(sys.argv[2]), sys.stdout)
    else:
        main()
