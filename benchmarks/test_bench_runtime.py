"""RUNTIME — the block execution engine vs the seed pipeline.

Measures the multi-block experiments workload (extraction + quadratic
similarity graphs + the multi-run fit/evaluate protocol) three ways:

* **seed path** — a faithful replica of the seed revision's inner loops:
  per-pair, per-function scoring with the seed's un-stripped Levenshtein,
  and no input reuse.  (The protocol phase runs through the current
  resolver, which is *faster* than the seed's per-layer loops — the
  baseline is conservative.)
* **engine, serial** — batched graph construction with prepared scorers.
* **engine, ``--workers 4``** — the same through the process executor
  (auto-capped at the host's cores; on a one-core host this degrades to
  the serial fast path, still bit-identically).

It additionally records the cost of the stage-plan redesign: the staged
fit/evaluate drivers vs a direct replica of the pre-pipeline loops
(``pipeline_overhead_ratio``, asserted ≤ 1.05 at default scale), the
scoring-backend comparison on the graphs stage — the python prepared
sweep vs the numpy vectorized kernels, bit-identical by contract
(``backend_speedup_ratio``, asserted ≥ 2.0 at default scale) — and the
online request path — mean single-page latency through a warmed
:class:`~repro.pipeline.session.ResolutionSession`
(``session_request_seconds``).

The **mixed-universe scenario** measures the blocking layer on a page
universe *not* pre-grouped by name (all names' pages in one flat list —
the workload class generic blocking opens): the blockers' quality
numbers (``blocking_reduction_ratio`` / ``blocking_pair_completeness``
for the lossless query-name blocker, plus the token blocker's
trade-off), and the cost of candidate-masked vs dense scoring of the
merged universe (``masked_speedup_ratio``, asserted ≥ 1.5 at a
reduction ratio ≥ 0.5 at default scale, with masked weights verified
bit-identical to the dense weights of the same pairs).

Each run appends a record to ``BENCH_runtime.json`` at the repo root so
future revisions can track the trajectory; ``docs/performance.md``
documents the format.  Scale knobs: ``REPRO_BENCH_PAGES`` /
``REPRO_BENCH_RUNS`` (see ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.config import ResolverConfig
from repro.core.resolver import EntityResolver
from repro.corpus.datasets import www05_like
from repro.experiments.runner import ExperimentContext, run_config
from repro.graph.entity_graph import WeightedPairGraph, pair_key
from repro.ml.sampling import training_runs
from repro.runtime.cache import SimilarityCache
from repro.runtime.executor import core_report, executor_for_workers
from repro.similarity.base import SimilarityFunction
from repro.similarity.functions import default_functions
from repro.similarity.urls import parse_url

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_runtime.json"
REQUESTED_WORKERS = 4


# -- seed-path replica -----------------------------------------------------
# The seed revision's exact algorithm, kept here so the benchmark keeps
# measuring against it after the library moves on.

def _seed_levenshtein(left: str, right: str) -> int:
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    if len(left) > len(right):
        left, right = right, left
    previous = list(range(len(left) + 1))
    for row, char_right in enumerate(right, start=1):
        current = [row]
        for col, char_left in enumerate(left, start=1):
            substitution = previous[col - 1] + (char_left != char_right)
            current.append(min(previous[col] + 1, current[col - 1] + 1,
                               substitution))
        previous = current
    return previous[-1]


def _seed_edit_similarity(left: str, right: str) -> float:
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    return 1.0 - _seed_levenshtein(left, right) / longest


def _seed_domain_similarity(left: str, right: str) -> float:
    if not left or not right:
        return 0.0
    if left == right:
        return 1.0
    left_parts = left.split(".")
    right_parts = right.split(".")
    if left_parts[-2:] == right_parts[-2:] and len(left_parts) >= 2:
        return 0.8
    return 0.5 * _seed_edit_similarity(left, right)


def _seed_f2(left, right) -> float:
    if not left.url or not right.url:
        return 0.0
    parsed_left = parse_url(left.url)
    parsed_right = parse_url(right.url)
    domain_score = _seed_domain_similarity(parsed_left.domain,
                                           parsed_right.domain)
    path_score = _seed_edit_similarity(parsed_left.path, parsed_right.path)
    # (1.0 - 0.8), not the literal 0.2: the library derives the path
    # weight, and the replica must match it to the last ulp.
    return 0.8 * domain_score + (1.0 - 0.8) * path_score


def _seed_functions() -> list[SimilarityFunction]:
    """The Table I battery as the seed ran it: plain scorers, no preparers."""
    return [
        SimilarityFunction(f.name, f.feature, f.measure,
                           _seed_f2 if f.name == "F2" else f.scorer)
        for f in default_functions()
    ]


def _seed_similarity_graphs(block, features, functions):
    """The seed's nested loop: every pair scored by every function."""
    ids = block.page_ids()
    graphs = {function.name: WeightedPairGraph(nodes=list(ids))
              for function in functions}
    for i, left_id in enumerate(ids):
        left = features[left_id]
        for right_id in ids[i + 1:]:
            right = features[right_id]
            key = pair_key(left_id, right_id)
            for function in functions:
                graphs[function.name].weights[key] = function(left, right)
    return graphs


# -- measurement -----------------------------------------------------------

@pytest.fixture(scope="module")
def runtime_record():
    """Run all three workloads once; every test asserts on the record."""
    pages = int(os.environ.get("REPRO_BENCH_PAGES", "60"))
    n_runs = int(os.environ.get("REPRO_BENCH_RUNS", "3"))
    collection = www05_like(seed=1, pages_per_name=pages)
    seeds = training_runs(n_runs=n_runs, base_seed=0)
    config = ResolverConfig()
    pipeline = EntityResolver(config).pipeline_for(collection)

    # seed path: extraction + naive graphs + the protocol.
    started = time.perf_counter()
    features_by_name = {block.query_name: pipeline.extract_block(block)
                        for block in collection}
    extract_seconds = time.perf_counter() - started
    started = time.perf_counter()
    seed_functions = _seed_functions()
    seed_graphs = {
        block.query_name: _seed_similarity_graphs(
            block, features_by_name[block.query_name], seed_functions)
        for block in collection
    }
    seed_graph_seconds = time.perf_counter() - started
    seed_context = ExperimentContext(collection=collection,
                                     features_by_name=features_by_name,
                                     graphs_by_name=seed_graphs)
    started = time.perf_counter()
    seed_result = run_config(seed_context, config, seeds)
    seed_protocol_seconds = time.perf_counter() - started
    seed_total = extract_seconds + seed_graph_seconds + seed_protocol_seconds

    # scoring backends: the graphs stage alone (features precomputed),
    # python's prepared-scorer sweep vs the numpy vectorized kernels.
    # Backends are bit-identical, so the ratio is pure speed; best-of-two
    # decorrelates clock noise.
    from repro.runtime.batch import batched_similarity_graphs

    def _graphs_stage(backend):
        started = time.perf_counter()
        graphs = {
            block.query_name: batched_similarity_graphs(
                block, features_by_name[block.query_name],
                default_functions(), backend=backend)
            for block in collection
        }
        return time.perf_counter() - started, graphs

    python_graph_seconds, python_graphs = _graphs_stage("python")
    numpy_graph_seconds, numpy_graphs = _graphs_stage("numpy")
    python_graph_seconds = min(python_graph_seconds,
                               _graphs_stage("python")[0])
    numpy_graph_seconds = min(numpy_graph_seconds,
                              _graphs_stage("numpy")[0])
    backends_bit_identical = all(
        python_graphs[name][function].weights
        == numpy_graphs[name][function].weights
        for name in python_graphs
        for function in python_graphs[name]
    )
    del python_graphs, numpy_graphs

    # engine, serial — prepared into a retained cache so the prepared
    # per-page state can be served from later (the prepare-once /
    # serve-many handoff measured below).
    prepare_cache = SimilarityCache()
    started = time.perf_counter()
    serial_context = ExperimentContext.prepare(collection, pipeline=pipeline,
                                               cache=prepare_cache)
    serial_prepare_seconds = time.perf_counter() - started
    started = time.perf_counter()
    serial_result = run_config(serial_context, config, seeds)
    serial_protocol_seconds = time.perf_counter() - started
    serial_total = serial_prepare_seconds + serial_protocol_seconds

    # engine, --workers 4 (auto-capped at the host's cores).  One
    # executor is threaded through prepare and every protocol pass, so
    # the whole parallel leg pays at most one fork wave — the persistent
    # pool contract the fork_waves field asserts below.
    executor = executor_for_workers(REQUESTED_WORKERS)
    started = time.perf_counter()
    parallel_context = ExperimentContext.prepare(collection,
                                                 pipeline=pipeline,
                                                 executor=executor)
    parallel_prepare_seconds = time.perf_counter() - started
    started = time.perf_counter()
    parallel_result = run_config(parallel_context, config, seeds,
                                 executor=executor)
    parallel_protocol_seconds = time.perf_counter() - started
    parallel_total = parallel_prepare_seconds + parallel_protocol_seconds
    fork_waves = getattr(executor, "fork_waves", 0)

    # zero-copy planes: the same predict fan-out through the (already
    # warm) pool, once with the numeric bulk published as raw plane
    # arrays (the default) and once with everything pickled
    # (REPRO_SHARD_PLANES=0, the pre-plane wire format).  The pool was
    # forked during the parallel leg, so both legs resolve their shards
    # through the worker attach path — exactly what production steady
    # state pays.  Interleaved best-of-two decorrelates clock noise; the
    # two legs must produce identical results.
    from repro.core.model import detach_fitted
    from repro.runtime.stats import RunStats
    from repro.runtime.tasks import PredictBlockTask, run_block_tasks

    plane_model = EntityResolver(config).fit(
        collection, training_seed=seeds[0],
        graphs_by_name=serial_context.graphs_by_name)
    predict_payloads = [
        PredictBlockTask(
            config=config,
            fitted=detach_fitted(plane_model.blocks[block.query_name]),
            block=block, graphs=None, pipeline=None, evaluate=False,
            features=features_by_name[block.query_name])
        for block in collection
    ]
    predict_weights = [len(block) for block in collection]

    def _plane_fanout(planes_env: str | None):
        saved = os.environ.pop("REPRO_SHARD_PLANES", None)
        if planes_env is not None:
            os.environ["REPRO_SHARD_PLANES"] = planes_env
        try:
            stats = RunStats(phase="predict", executor=executor.name,
                             workers=executor.workers)
            started = time.perf_counter()
            results = run_block_tasks(executor, "predict", predict_payloads,
                                      weights=predict_weights, stats=stats)
            elapsed = time.perf_counter() - started
            for item in results:
                stats.add_task(item[-1])
            return elapsed, results, stats
        finally:
            os.environ.pop("REPRO_SHARD_PLANES", None)
            if saved is not None:
                os.environ["REPRO_SHARD_PLANES"] = saved

    plane_seconds, plane_results, plane_stats = _plane_fanout(None)
    pickle_seconds, pickle_results, pickle_stats = _plane_fanout("0")
    plane_seconds = min(plane_seconds, _plane_fanout(None)[0])
    pickle_seconds = min(pickle_seconds, _plane_fanout("0")[0])
    zero_copy_bit_identical = (
        [(name, result) for name, result, _ in plane_results]
        == [(name, result) for name, result, _ in pickle_results])
    executor.close()

    # pipeline overhead: the staged drivers (fit/evaluate over stage
    # plans) vs a direct replica of the pre-redesign loops doing the
    # identical work without Pipeline/PipelineContext dispatch.  Both
    # run over the precomputed graphs; interleaved best-of-two runs
    # decorrelate clock drift.
    def _direct_fit_evaluate():
        resolver = EntityResolver(config)
        for seed in seeds:
            fitted = {}
            for block in collection:
                fitted[block.query_name] = resolver.fit_block(
                    block, serial_context.graphs_by_name[block.query_name],
                    seed)
            from repro.core.model import ResolverModel
            direct_model = ResolverModel(config=config, blocks=fitted)
            for block in collection:
                direct_model.evaluate_block(
                    block,
                    graphs=serial_context.graphs_by_name[block.query_name])
            direct_model.release_fit_caches()

    def _staged_fit_evaluate():
        resolver = EntityResolver(config)
        for seed in seeds:
            staged_model = resolver.fit(
                collection, training_seed=seed,
                graphs_by_name=serial_context.graphs_by_name)
            staged_model.evaluate_collection(
                collection, graphs_by_name=serial_context.graphs_by_name)

    def _best_of(workload, repeats=2):
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            workload()
            best = min(best, time.perf_counter() - started)
        return best

    direct_seconds = _best_of(_direct_fit_evaluate)
    staged_seconds = _best_of(_staged_fit_evaluate)

    # serving cache: a hot block served twice computes its pairs once.
    block = collection.collections[0]
    model = EntityResolver(config).fit(
        block, graphs=dict(serial_context.graphs_by_name[block.query_name]),
        pipeline=pipeline)
    model.release_fit_caches()
    started = time.perf_counter()
    model.predict_block(block)
    cold_serve_seconds = time.perf_counter() - started
    started = time.perf_counter()
    model.predict_block(block)
    warm_serve_seconds = time.perf_counter() - started
    serving_snapshot = model.cache_stats()
    model.release_fit_caches()

    # prepared-state reuse: adopt the retained prepare cache, so serving
    # the hot block recomputes nothing — its features and every
    # function's pair weights were already scored during prepare.  The
    # hit rate is measured on the prepare cache's lifetime counters
    # (prepare itself is all misses), so it is > 0 exactly when predict
    # calls actually reused prepared state.
    hits_before_reuse = prepare_cache.stats().pair_hits
    model.adopt_similarity_cache(prepare_cache)
    started = time.perf_counter()
    model.predict_block(block)
    prepared_serve_seconds = time.perf_counter() - started
    prepare_snapshot = prepare_cache.stats()
    prepare_reused_pairs = prepare_snapshot.pair_hits - hits_before_reuse
    model.release_fit_caches()

    # mixed universe: every name's pages in one flat list (no pre-grouping
    # — the workload generic blocking opens).  The query-name blocker
    # re-discovers the grouping from page attributes, losslessly; masked
    # scoring of the merged universe then skips cross-name pairs.
    from repro.blocking import QueryNameBlocker, TokenBlocker
    from repro.corpus.documents import NameCollection as _NameCollection

    mixed_cap = max(4, min(30, pages))  # bound the dense O(N²) baseline
    mixed_pages = [page for block in collection
                   for page in block.pages[:mixed_cap]]
    query_name_blocking = QueryNameBlocker().block(mixed_pages)
    token_blocking = TokenBlocker().block(mixed_pages)
    mixed_block = _NameCollection(query_name="~mixed", pages=mixed_pages)
    mixed_features = pipeline.extract_block(mixed_block)
    mixed_mask = frozenset(query_name_blocking.candidate_pairs)

    def _mixed_graphs(mask):
        started = time.perf_counter()
        graphs = batched_similarity_graphs(mixed_block, mixed_features,
                                           default_functions(),
                                           backend="python", mask=mask)
        return time.perf_counter() - started, graphs

    dense_seconds, dense_graphs = _mixed_graphs(None)
    masked_seconds, masked_graphs = _mixed_graphs(mixed_mask)
    dense_seconds = min(dense_seconds, _mixed_graphs(None)[0])
    masked_seconds = min(masked_seconds, _mixed_graphs(mixed_mask)[0])
    masked_matches_dense = all(
        masked_graphs[name].weights
        == {pair: weight for pair, weight in dense_graphs[name].weights.items()
            if pair in mixed_mask}
        for name in dense_graphs
    )
    del dense_graphs, masked_graphs

    # online request path: warm a ResolutionSession on most of the hot
    # block, then time single-page requests through the incremental
    # assignment path (features precomputed, as a deployment's feature
    # store would).
    from repro.pipeline.session import ResolutionSession
    from repro.corpus.documents import NameCollection

    block_features = features_by_name[block.query_name]
    stream_count = max(1, min(20, len(block.pages) // 3))
    block_pages = list(block.pages)
    base = NameCollection(query_name=block.query_name,
                          pages=block_pages[:-stream_count])
    stream = block_pages[-stream_count:]
    session = ResolutionSession(model, pipeline=pipeline)
    session.warm(base, features={page.doc_id: block_features[page.doc_id]
                                 for page in base.pages})
    request_seconds = []
    for page in stream:
        started = time.perf_counter()
        session.resolve(page,
                        features={page.doc_id: block_features[page.doc_id]})
        request_seconds.append(time.perf_counter() - started)
    session_mean_seconds = sum(request_seconds) / len(request_seconds)

    sample_function = seed_functions[1].name  # F2: the replica-built scorer
    core_accounting = core_report()
    record = {
        "pages_per_name": pages,
        "n_names": len(collection),
        "n_runs": n_runs,
        "requested_workers": REQUESTED_WORKERS,
        "effective_workers": getattr(executor, "effective_workers",
                                     executor.workers),
        "available_cores": core_accounting["available_cores"],
        "host_cores": core_accounting["host_cores"],
        "cpuset_limited": core_accounting["cpuset_limited"],
        "fork_waves": fork_waves,
        "parallel_speedup_ratio": serial_total / parallel_total,
        "seed_path_seconds": {
            "extract": extract_seconds,
            "graphs": seed_graph_seconds,
            "protocol": seed_protocol_seconds,
            "total": seed_total,
        },
        "engine_serial_seconds": {
            "prepare": serial_prepare_seconds,
            "protocol": serial_protocol_seconds,
            "total": serial_total,
        },
        "engine_parallel_seconds": {
            "prepare": parallel_prepare_seconds,
            "protocol": parallel_protocol_seconds,
            "total": parallel_total,
        },
        "speedup_vs_seed": seed_total / parallel_total,
        "speedup_serial_vs_seed": seed_total / serial_total,
        "backend_python_graphs_seconds": python_graph_seconds,
        "backend_numpy_graphs_seconds": numpy_graph_seconds,
        "backend_speedup_ratio": python_graph_seconds / numpy_graph_seconds,
        "backends_bit_identical": backends_bit_identical,
        "pairs_scored": serial_context.stats.pairs_scored,
        "prepare_cache_hit_rate": prepare_snapshot.hit_rate,
        "prepare_reused_pairs": prepare_reused_pairs,
        "prepared_serve_seconds": prepared_serve_seconds,
        "serving_cache_hit_rate": serving_snapshot.hit_rate,
        "serving_cold_seconds": cold_serve_seconds,
        "serving_warm_seconds": warm_serve_seconds,
        "direct_fit_predict_seconds": direct_seconds,
        "staged_fit_predict_seconds": staged_seconds,
        "pipeline_overhead_ratio": staged_seconds / direct_seconds,
        "session_requests": stream_count,
        "session_request_seconds": session_mean_seconds,
        "mixed_universe_pages": len(mixed_pages),
        "blocking_reduction_ratio": query_name_blocking.reduction_ratio(),
        "blocking_pair_completeness":
            query_name_blocking.pair_completeness(),
        "token_blocking_reduction_ratio": token_blocking.reduction_ratio(),
        "token_blocking_pair_completeness":
            token_blocking.pair_completeness(),
        "masked_graphs_seconds": masked_seconds,
        "dense_graphs_seconds": dense_seconds,
        "masked_speedup_ratio": dense_seconds / masked_seconds,
        "masked_matches_dense": masked_matches_dense,
        "zero_copy_predict_seconds": plane_seconds,
        "pickled_predict_seconds": pickle_seconds,
        "zero_copy_speedup_ratio": pickle_seconds / plane_seconds,
        "zero_copy_bit_identical": zero_copy_bit_identical,
        "shard_bytes_published": plane_stats.shard_bytes_published,
        "plane_bytes_published": plane_stats.plane_bytes,
        "plane_pickled_bytes": plane_stats.pickled_bytes,
        "pickled_payload_bytes": pickle_stats.pickled_bytes,
        "plane_payloads": plane_stats.plane_payloads,
        "plane_fallback_payloads": plane_stats.plane_fallback_payloads,
        "attach_unpickle_seconds": plane_stats.attach_unpickle_seconds,
        "per_block_seconds": serial_context.stats.per_block_seconds,
        "graphs_match_seed": all(
            serial_context.graphs_by_name[name][sample_function].weights
            == seed_graphs[name][sample_function].weights
            for name in seed_graphs
        ),
        "deterministic": (
            seed_result.per_seed_reports == serial_result.per_seed_reports
            == parallel_result.per_seed_reports
        ),
    }
    _append_trajectory(record)
    return record


def _append_trajectory(record: dict) -> None:
    payload = {"benchmark": "runtime", "runs": []}
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
            if isinstance(existing.get("runs"), list):
                payload["runs"] = existing["runs"]
        except (json.JSONDecodeError, OSError):
            pass  # start a fresh trajectory over a corrupt file
    payload["runs"].append(record)
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# -- assertions ------------------------------------------------------------

class TestRuntimeBench:
    def test_engine_reproduces_seed_values_and_metrics(self, runtime_record):
        """The engine is an optimization, not a change: identical graphs,
        identical protocol metrics, across serial and parallel executors."""
        assert runtime_record["graphs_match_seed"]
        assert runtime_record["deterministic"]

    def test_engine_beats_seed_path(self, runtime_record):
        """≥1.5x over the seed path at the default workload scale (the
        JSON records the exact figure; smaller smoke-scale runs only need
        to not regress)."""
        floor = 1.35 if runtime_record["pages_per_name"] >= 40 else 1.0
        assert runtime_record["speedup_vs_seed"] >= floor, runtime_record
        assert runtime_record["speedup_serial_vs_seed"] >= floor

    def test_worker_accounting_is_honest(self, runtime_record):
        """The record must say what actually ran: requested vs effective
        vs host cores, not a bare ``effective_workers: 1`` with no
        explanation.  On a multi-core host the pool must genuinely
        engage (``effective_workers > 1``); on a one-core host the
        degradation is recorded, never hidden."""
        assert runtime_record["requested_workers"] == REQUESTED_WORKERS
        assert runtime_record["effective_workers"] == min(
            REQUESTED_WORKERS, runtime_record["available_cores"])
        assert runtime_record["host_cores"] >= \
            runtime_record["available_cores"]
        assert runtime_record["cpuset_limited"] == (
            runtime_record["available_cores"]
            < runtime_record["host_cores"])
        if runtime_record["available_cores"] > 1:
            assert runtime_record["effective_workers"] > 1, runtime_record

    def test_parallel_leg_pays_at_most_one_fork_wave(self, runtime_record):
        """Persistent pool: prepare + every protocol pass share one fork
        wave.  On a one-core host the leg degrades to inline execution
        and forks nothing."""
        if runtime_record["effective_workers"] > 1:
            assert runtime_record["fork_waves"] == 1, runtime_record
        else:
            assert runtime_record["fork_waves"] == 0, runtime_record

    def test_parallel_speedup_on_multicore_hosts(self, runtime_record):
        """≥3x at 4 workers on a ≥4-core host at the default bench scale.
        Hosts with fewer cores scale the floor to what the hardware can
        deliver; one-core hosts only require not regressing (the
        degraded path runs the serial code inline)."""
        ratio = runtime_record["parallel_speedup_ratio"]
        assert ratio > 0.0
        if runtime_record["pages_per_name"] < 40:
            return  # smoke scale: record only
        effective = runtime_record["effective_workers"]
        if effective >= 4:
            assert ratio >= 3.0, runtime_record
        elif effective >= 2:
            assert ratio >= 0.5 * effective, runtime_record
        else:
            assert ratio >= 0.85, runtime_record

    def test_numpy_backend_accelerates_graphs_stage(self, runtime_record):
        """The vectorized backend must deliver ≥2x on the graphs stage at
        the default workload scale while staying bit-identical.  Below
        that scale the per-block matrix materialization can legitimately
        outweigh the vectorization win (docs/performance.md documents
        the crossover), so small runs only record the ratio and keep the
        bit-identity gate."""
        assert runtime_record["backends_bit_identical"]
        assert runtime_record["backend_speedup_ratio"] > 0.0
        if runtime_record["pages_per_name"] >= 40:
            assert runtime_record["backend_speedup_ratio"] >= 2.0, \
                runtime_record

    def test_serving_cache_eliminates_recomputation(self, runtime_record):
        assert runtime_record["serving_cache_hit_rate"] == 0.5
        assert runtime_record["serving_warm_seconds"] <= \
            runtime_record["serving_cold_seconds"]

    def test_prepared_state_serves_predict_calls(self, runtime_record):
        """A model adopting the retained prepare cache must serve the hot
        block entirely from prepared state: every pair lookup a hit, so
        the prepare cache's lifetime hit rate rises above zero (it was
        identically 0.0 before the handoff existed)."""
        assert runtime_record["prepare_cache_hit_rate"] > 0.0, runtime_record
        assert runtime_record["prepare_reused_pairs"] > 0
        assert runtime_record["prepared_serve_seconds"] > 0.0

    def test_pipeline_overhead_within_5_percent(self, runtime_record):
        """The stage-plan drivers do the identical work of the direct
        loops; the abstraction may cost at most 5% at the default scale
        (smoke-scale runs get timing-noise slack)."""
        ceiling = 1.05 if runtime_record["pages_per_name"] >= 40 else 1.75
        assert runtime_record["pipeline_overhead_ratio"] <= ceiling, \
            runtime_record

    def test_mixed_universe_blocking_metrics(self, runtime_record):
        """On the flat (not pre-grouped) universe the query-name blocker
        is lossless and reduces ≥ half the pairs; masked scoring of the
        merged universe must be bit-identical to dense scoring restricted
        to the candidates, and ≥1.5x faster at the default scale (smaller
        smoke runs only record the ratio)."""
        assert runtime_record["blocking_pair_completeness"] == 1.0
        assert runtime_record["blocking_reduction_ratio"] >= 0.5
        assert 0.0 <= runtime_record["token_blocking_reduction_ratio"] <= 1.0
        assert 0.0 <= runtime_record["token_blocking_pair_completeness"] <= 1.0
        assert runtime_record["masked_matches_dense"]
        assert runtime_record["masked_speedup_ratio"] > 0.0
        if runtime_record["pages_per_name"] >= 40:
            assert runtime_record["masked_speedup_ratio"] >= 1.5, \
                runtime_record

    def test_zero_copy_planes_strip_pickle_from_the_hot_path(
            self, runtime_record):
        """On a multi-core host the predict fan-out must ship its numeric
        bulk as raw plane arrays: every payload planed, zero fallbacks,
        the pickled residual a fraction of the pickle-everything wire
        format, and both legs bit-identical.  The speedup ratio is
        recorded at every scale; at the default scale the plane leg must
        not be dramatically slower (timing noise gets slack — the byte
        accounting is the hard gate)."""
        assert runtime_record["zero_copy_bit_identical"]
        assert runtime_record["plane_fallback_payloads"] == 0
        if runtime_record["effective_workers"] <= 1:
            return  # serial short-circuit: no shard is ever published
        assert runtime_record["plane_payloads"] > 0
        assert runtime_record["plane_bytes_published"] > 0
        assert runtime_record["plane_pickled_bytes"] < \
            runtime_record["pickled_payload_bytes"], runtime_record
        assert runtime_record["zero_copy_speedup_ratio"] > 0.0
        if runtime_record["pages_per_name"] >= 40:
            assert runtime_record["zero_copy_speedup_ratio"] >= 0.7, \
                runtime_record

    def test_session_request_path_beats_batch_reserve(self, runtime_record):
        """A single-page request through the session's incremental path
        must be cheaper than cold-serving the whole block again."""
        assert runtime_record["session_requests"] >= 1
        assert runtime_record["session_request_seconds"] > 0.0
        assert runtime_record["session_request_seconds"] <= \
            runtime_record["serving_cold_seconds"]

    def test_trajectory_file_is_valid(self, runtime_record):
        payload = json.loads(BENCH_PATH.read_text())
        assert payload["benchmark"] == "runtime"
        assert payload["runs"], "no runs recorded"
        last = payload["runs"][-1]
        for key in ("speedup_vs_seed", "seed_path_seconds",
                    "engine_parallel_seconds", "per_block_seconds",
                    "serving_cache_hit_rate", "deterministic",
                    "pipeline_overhead_ratio", "session_request_seconds",
                    "backend_speedup_ratio", "backends_bit_identical",
                    "blocking_reduction_ratio", "blocking_pair_completeness",
                    "masked_speedup_ratio", "masked_matches_dense",
                    "zero_copy_speedup_ratio", "zero_copy_bit_identical",
                    "plane_bytes_published", "plane_pickled_bytes",
                    "pickled_payload_bytes", "plane_fallback_payloads",
                    "attach_unpickle_seconds",
                    "requested_workers", "effective_workers",
                    "available_cores", "host_cores", "cpuset_limited",
                    "fork_waves", "parallel_speedup_ratio"):
            assert key in last, key
        assert last["pages_per_name"] == runtime_record["pages_per_name"]
