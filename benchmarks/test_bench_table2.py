"""TAB2 — Table II: function subsets × decision criteria × combiners.

Regenerates the paper's central table: columns I4/I7/I10 (threshold-only
best-graph over growing function subsets), C4/C7/C10 (the same subsets
with the full criteria battery — the paper's proposed technique) and W
(accuracy-weighted averaging), for Fp / F / Rand on both datasets.

Shape claims: S3 (more functions help, and C_k > I_k), S4 (C10 > W) and
S6 (WePS scores below WWW'05).
"""

from repro.experiments.reporting import format_table
from repro.experiments.tables import TABLE2_COLUMNS, table2

PAPER_VALUES = {
    # (dataset, metric) -> paper's reported row, for the printed comparison.
    ("WWW'05", "fp"): [0.8128, 0.8211, 0.8232, 0.8537, 0.8732, 0.8774, 0.8371],
    ("WWW'05", "f1"): [0.7654, 0.7773, 0.7822, 0.8338, 0.8376, 0.8438, 0.8168],
    ("WWW'05", "rand"): [0.8018, 0.8109, 0.8326, 0.8747, 0.8814, 0.8886, 0.8531],
    ("WePS", "fp"): [0.7270, 0.7388, 0.7682, 0.7560, 0.7659, 0.7880, 0.7785],
    ("WePS", "f1"): [0.7042, 0.7042, 0.7042, 0.7127, 0.7231, 0.7476, 0.7190],
    ("WePS", "rand"): [0.7102, 0.7102, 0.7139, 0.7492, 0.7531, 0.7675, 0.7290],
}


def test_table2_comparison_of_results(benchmark, www_context, weps_context,
                                      bench_seeds):
    contexts = {"WWW'05": www_context, "WePS": weps_context}
    table = benchmark.pedantic(
        lambda: table2(contexts, bench_seeds), rounds=1, iterations=1)

    print()
    headers = ["dataset", "metric"] + list(TABLE2_COLUMNS) + ["source"]
    rows = []
    for dataset in table.datasets():
        for metric in ("fp", "f1", "rand"):
            measured = [table.get(dataset, metric, column)
                        for column in TABLE2_COLUMNS]
            rows.append([dataset, metric] + measured + ["measured"])
            paper_row = PAPER_VALUES.get((dataset, metric))
            if paper_row:
                rows.append([dataset, metric] + paper_row + ["paper"])
    print(format_table(headers, rows, title="Table II — comparison of results"))

    for dataset in table.datasets():
        fp = {column: table.get(dataset, "fp", column)
              for column in TABLE2_COLUMNS}

        # S3a: adding functions helps within each decision family
        # (weak monotonicity with a small noise allowance).
        assert fp["I10"] >= fp["I4"] - 0.02, fp
        assert fp["C10"] >= fp["C4"] - 0.02, fp

        # S3b: region-accuracy criteria beat plain thresholds at full
        # function count — the paper's headline improvement.
        assert fp["C10"] > fp["I10"], fp

        # S4: best-graph selection beats weighted averaging.
        assert fp["C10"] >= fp["W"] - 0.01, fp

    # S6: the WePS dataset is harder across the board.
    assert (table.get("WWW'05", "fp", "C10")
            > table.get("WePS", "fp", "C10"))
