"""ABL-NSE — ablation: robustness to training-label noise.

The paper's ground truth comes from manual page labeling; annotation
errors are inevitable.  This bench flips a fraction of training labels
(symmetric, plus the realistic "missed links" one-sided variant) and
measures how the accuracy-estimation machinery degrades.  Expected:
graceful degradation — small noise costs little, and region criteria
(which average over region populations) hold up at least as well as raw
thresholds.
"""

from repro.core.config import ResolverConfig
from repro.core.labels import TrainingSample
from repro.core.resolver import EntityResolver
from repro.experiments.reporting import format_table
from repro.graph.transitive import transitive_closure_clusters
from repro.metrics.clusterings import Clustering, clustering_from_assignments
from repro.metrics.report import evaluate_clustering, mean_report
from repro.ml.noise import flip_labels, one_sided_noise
from repro.ml.sampling import sample_training_pairs

NOISE_LEVELS = (0.0, 0.05, 0.1, 0.2, 0.3)


def _run_with_noise(context, seeds, noise_fraction, mode="symmetric"):
    resolver = EntityResolver(ResolverConfig())
    per_run = []
    for seed in seeds:
        reports = []
        for block in context.collection:
            clean = sample_training_pairs(block, fraction=0.1, seed=seed)
            if mode == "symmetric":
                noisy = flip_labels(clean, noise_fraction, seed=seed)
            else:
                noisy = one_sided_noise(clean, noise_fraction,
                                        target_label=True, seed=seed)
            training = TrainingSample.from_pairs(noisy)
            graphs = context.graphs_by_name[block.query_name]
            layers = resolver.build_layers(graphs, training)
            combination = resolver._combiner.combine(layers, training)
            predicted = Clustering(
                transitive_closure_clusters(combination.graph))
            truth = clustering_from_assignments(block.ground_truth())
            reports.append(evaluate_clustering(predicted, truth))
        per_run.append(mean_report(reports))
    return mean_report(per_run)


def test_ablation_label_noise(benchmark, www_context, bench_seeds):
    def run_all():
        results = {}
        for level in NOISE_LEVELS:
            results[("symmetric", level)] = _run_with_noise(
                www_context, bench_seeds, level, mode="symmetric")
        for level in (0.1, 0.3):
            results[("missed-links", level)] = _run_with_noise(
                www_context, bench_seeds, level, mode="one_sided")
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    rows = [[f"{mode} {level:.0%}", report.fp, report.f1, report.rand]
            for (mode, level), report in results.items()]
    print(format_table(["training noise", "Fp", "F", "Rand"], rows,
                       title="Ablation — training-label noise (WWW'05-like, C10)"))

    clean = results[("symmetric", 0.0)].fp
    # Graceful degradation: 5 % noise costs little...
    assert results[("symmetric", 0.05)].fp > clean - 0.08
    # ...and even 30 % symmetric noise keeps the system above the weakest
    # clean single functions.
    assert results[("symmetric", 0.3)].fp > 0.5
    # One-sided missed-link noise is milder than symmetric noise at the
    # same rate (it never fabricates positive evidence).
    assert (results[("missed-links", 0.3)].fp
            >= results[("symmetric", 0.3)].fp - 0.05)
