"""ABL-EXT — ablation: the repo's extensions beyond the paper.

* star clustering (WePS-style clusterer; bounds closure chaining),
* the entropy-weighted combiner (the paper's §VII future-work direction:
  weight evidence by information gain instead of accuracy),
* the R-Swoosh match-merge baseline from the related work.

Expected: all extensions land in the working band; star clustering is
competitive with transitive closure; the entropy combiner behaves like W.
"""

from repro.baselines.swoosh import SwooshBaseline
from repro.core.config import ResolverConfig, table2_config
from repro.core.entropy import EntropyWeightedCombiner
from repro.core.labels import TrainingSample
from repro.core.resolver import EntityResolver
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_config
from repro.graph.transitive import transitive_closure_clusters
from repro.metrics.clusterings import Clustering, clustering_from_assignments
from repro.metrics.report import evaluate_clustering, mean_report
from repro.ml.sampling import sample_training_pairs


def _run_entropy_combiner(context, seeds):
    """W-style combination but with information-gain weights."""
    resolver = EntityResolver(ResolverConfig())
    per_run = []
    for seed in seeds:
        reports = []
        for block in context.collection:
            graphs = context.graphs_by_name[block.query_name]
            training = TrainingSample.from_pairs(
                sample_training_pairs(block, fraction=0.1, seed=seed))
            layers = resolver.build_layers(graphs, training)
            combination = EntropyWeightedCombiner(graphs).combine(
                layers, training)
            predicted = Clustering(
                transitive_closure_clusters(combination.graph))
            truth = clustering_from_assignments(block.ground_truth())
            reports.append(evaluate_clustering(predicted, truth))
        per_run.append(mean_report(reports))
    return mean_report(per_run)


def _run_swoosh(context, seeds):
    per_run = []
    for seed in seeds:
        reports = []
        for block in context.collection:
            baseline = SwooshBaseline(
                context.features_by_name[block.query_name])
            training = TrainingSample.from_pairs(
                sample_training_pairs(block, fraction=0.1, seed=seed))
            predicted = baseline.resolve_block(
                block, context.graphs_by_name[block.query_name], training)
            truth = clustering_from_assignments(block.ground_truth())
            reports.append(evaluate_clustering(predicted, truth))
        per_run.append(mean_report(reports))
    return mean_report(per_run)


def test_ablation_extensions(benchmark, www_context, bench_seeds):
    def run_all():
        results = {}
        results["C10 / transitive (paper)"] = run_config(
            www_context, table2_config("C10"), bench_seeds).mean()
        results["C10 / star"] = run_config(
            www_context, ResolverConfig(clusterer="star"),
            bench_seeds).mean()
        results["W (accuracy weights)"] = run_config(
            www_context, table2_config("W"), bench_seeds).mean()
        results["W (entropy weights)"] = _run_entropy_combiner(
            www_context, bench_seeds)
        results["R-Swoosh (F8)"] = _run_swoosh(www_context, bench_seeds)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    rows = [[label, report.fp, report.f1, report.rand]
            for label, report in results.items()]
    print(format_table(["strategy", "Fp", "F", "Rand"], rows,
                       title="Ablation — extensions (WWW'05-like)"))

    # Every extension lands in the working band.
    for label, report in results.items():
        assert report.fp > 0.55, (label, report.fp)
    # Star clustering stays competitive with closure.
    gap = (results["C10 / transitive (paper)"].fp
           - results["C10 / star"].fp)
    assert gap < 0.12, results
    # The entropy combiner is a W variant and must stay near W.
    entropy_gap = abs(results["W (accuracy weights)"].fp
                      - results["W (entropy weights)"].fp)
    assert entropy_gap < 0.12, results
