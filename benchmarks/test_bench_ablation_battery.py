"""ABL-BAT — ablation: does the "more functions help" trend continue?

Table II shows I4 < I7 < I10 and C4 < C7 < C10.  This bench extends the
sweep past the paper with the F11–F14 battery (C14) and also reports the
statistical significance of the central C10 > I10 comparison — a gap in
the paper's own evaluation.
"""

from repro.core.config import ResolverConfig, table2_config
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentContext, run_config
from repro.experiments.significance import compare_strategies
from repro.similarity.extended import SUBSET_I14, full_battery


def test_ablation_extended_battery(benchmark, www_context, bench_seeds):
    def run_all():
        # The shared context only carries F1–F10 graphs; the extended
        # battery needs its own preparation (the F11–F14 graphs).
        extended_context = ExperimentContext.prepare(
            www_context.collection, functions=full_battery())
        results = {}
        for column in ("C4", "C7", "C10"):
            results[column] = run_config(
                extended_context, table2_config(column), bench_seeds,
                label=column)
        results["C14"] = run_config(
            extended_context,
            ResolverConfig(function_names=SUBSET_I14),
            bench_seeds, label="C14")
        comparison = compare_strategies(
            results["C10"],
            run_config(extended_context, table2_config("I10"), bench_seeds,
                       label="I10"))
        return results, comparison

    results, comparison = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    rows = [[label, result.mean().fp, result.mean().f1, result.mean().rand]
            for label, result in results.items()]
    print(format_table(["battery", "Fp", "F", "Rand"], rows,
                       title="Ablation — function battery size (WWW'05-like)"))
    print(f"\nC10 vs I10: mean ΔFp = {comparison.mean_difference:+.4f}, "
          f"p = {comparison.p_value:.4f}, "
          f"95% CI [{comparison.ci_low:+.4f}, {comparison.ci_high:+.4f}] "
          f"over {comparison.n_names} names")

    fp = {label: result.mean().fp for label, result in results.items()}
    # The growth trend continues or saturates — C14 must not fall off.
    assert fp["C14"] >= fp["C10"] - 0.02, fp
    assert fp["C10"] >= fp["C4"] - 0.02, fp
    # The paper's central improvement is statistically significant.
    assert comparison.mean_difference > 0.0
    assert comparison.p_value < 0.1, comparison
