"""PERF — micro-benchmarks of the pipeline's hot paths.

Unlike the table/figure benches (single-shot experiment regeneration),
these are genuine repeated-measurement benchmarks: similarity-graph
construction (the quadratic step), feature extraction, one resolver pass,
and the blocking schemes.
"""

import pytest

from repro.blocking import QueryNameBlocker, SortedNeighborhoodBlocker, TokenBlocker
from repro.core.config import ResolverConfig
from repro.core.resolver import EntityResolver, compute_similarity_graphs
from repro.similarity.functions import default_functions


@pytest.fixture(scope="module")
def one_block(www_context):
    name = www_context.collection.query_names()[0]
    return www_context.collection.by_name(name)


@pytest.fixture(scope="module")
def one_block_features(www_context, one_block):
    return www_context.features_by_name[one_block.query_name]


def test_perf_similarity_graphs(benchmark, one_block, one_block_features):
    """Quadratic similarity computation for one block, all ten functions."""
    functions = default_functions()
    graphs = benchmark(compute_similarity_graphs, one_block,
                       one_block_features, functions)
    assert graphs["F8"].is_complete()


def test_perf_extraction(benchmark, www_context, one_block):
    """Feature extraction (tokenize + NER + concepts + TF-IDF) per block."""
    resolver = EntityResolver(ResolverConfig())
    pipeline = resolver.pipeline_for(www_context.collection)
    features = benchmark(pipeline.extract_block, one_block)
    assert len(features) == len(one_block)


def test_perf_resolver_pass(benchmark, www_context, one_block):
    """One full Algorithm 1 pass given precomputed graphs."""
    resolver = EntityResolver(ResolverConfig())
    graphs = www_context.graphs_by_name[one_block.query_name]
    result = benchmark(resolver.resolve_block, one_block, 0, None, None,
                       graphs)
    assert result.report.fp > 0.0


@pytest.mark.parametrize("blocker", [
    QueryNameBlocker(),
    TokenBlocker(),
    SortedNeighborhoodBlocker(window=10),
], ids=["query-name", "token", "sorted-neighborhood"])
def test_perf_blocking(benchmark, www_context, blocker):
    """Blocking throughput over the whole dataset."""
    pages = list(www_context.collection.all_pages())
    result = benchmark(blocker.block, pages)
    assert result.n_candidates() > 0
