"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables and figures.  Dataset scale is
configurable so CI stays fast while a full paper-scale run remains one
environment variable away:

* ``REPRO_BENCH_PAGES``  — pages per name for the WWW'05-like dataset
  (default 60; the paper's collection has ~100).  The WePS-like dataset
  uses 1.5x this value, mirroring the 100 vs 150 ratio.
* ``REPRO_BENCH_RUNS``   — number of protocol runs (default 3; paper: 5).

Contexts (extraction + similarity graphs) are prepared once per session.
"""

from __future__ import annotations

import os

import pytest

from repro.corpus.datasets import weps2_like, www05_like
from repro.experiments.runner import ExperimentContext


def _bench_pages() -> int:
    return int(os.environ.get("REPRO_BENCH_PAGES", "60"))


def _bench_runs() -> int:
    return int(os.environ.get("REPRO_BENCH_RUNS", "3"))


@pytest.fixture(scope="session")
def bench_seeds():
    """The protocol's training seeds for benchmark runs."""
    from repro.ml.sampling import training_runs
    return training_runs(n_runs=_bench_runs(), base_seed=0)


@pytest.fixture(scope="session")
def www_context():
    """Prepared WWW'05-like dataset (all 12 names)."""
    dataset = www05_like(seed=1, pages_per_name=_bench_pages())
    return ExperimentContext.prepare(dataset)


@pytest.fixture(scope="session")
def weps_context():
    """Prepared WePS-2-like dataset (all 10 names)."""
    dataset = weps2_like(seed=2, pages_per_name=int(_bench_pages() * 1.5))
    return ExperimentContext.prepare(dataset)
