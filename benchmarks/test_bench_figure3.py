"""FIG3 — Figure 3: WePS per-function metrics and the combined result.

Same layout as Figure 2 on the harder WePS-like dataset.  Shape claims:
S2 (combined beats singles) and S6 (WePS scores lower than WWW'05 —
asserted cross-figure in the Table II bench, sanity-banded here).
"""

from repro.experiments.figures import figure3_series
from repro.experiments.reporting import format_bar_chart
from repro.metrics.report import PAPER_METRICS


def test_figure3_weps(benchmark, weps_context, bench_seeds):
    series = benchmark.pedantic(
        lambda: figure3_series(weps_context, bench_seeds),
        rounds=1, iterations=1)

    print()
    for metric in PAPER_METRICS:
        chart = {label: report.get(metric) for label, report in series.items()}
        print(format_bar_chart(
            chart, title=f"Figure 3 — WePS-like, {metric}"))
        print()

    combined = series["combined"]
    singles = {label: report for label, report in series.items()
               if label != "combined"}

    # S2 on WePS as well.
    best_single_fp = max(report.fp for report in singles.values())
    assert combined.fp >= best_single_fp - 0.01

    # Plausible absolute band (paper: 0.788).
    assert 0.6 <= combined.fp <= 1.0
