"""FIG2 — Figure 2: WWW'05 per-function metrics and the combined result.

The paper's bar chart shows Fp, F and Rand for each of F1–F10 under
threshold decisions, with the final (combined) bar clearly the best.
Shape claim S2: the combined technique beats every individual function.
"""

from repro.experiments.figures import figure2_series
from repro.experiments.reporting import format_bar_chart
from repro.metrics.report import PAPER_METRICS


def test_figure2_www05(benchmark, www_context, bench_seeds):
    series = benchmark.pedantic(
        lambda: figure2_series(www_context, bench_seeds),
        rounds=1, iterations=1)

    print()
    for metric in PAPER_METRICS:
        chart = {label: report.get(metric) for label, report in series.items()}
        print(format_bar_chart(
            chart, title=f"Figure 2 — WWW'05-like, {metric}"))
        print()

    combined = series["combined"]
    singles = {label: report for label, report in series.items()
               if label != "combined"}

    # S2: the combined technique beats every single function on Fp
    # (allow a hair of protocol noise).
    best_single_fp = max(report.fp for report in singles.values())
    assert combined.fp >= best_single_fp - 0.01, (
        f"combined {combined.fp:.4f} vs best single {best_single_fp:.4f}")

    # The combined result lands in a plausible absolute band (paper: 0.877).
    assert 0.75 <= combined.fp <= 1.0

    # Name-based functions are weak when all namesakes share the query
    # name; content functions carry the signal (F8/F10 among the best).
    assert max(singles["F8"].fp, singles["F10"].fp) >= singles["F3"].fp
