"""FIG1 — Figure 1: per-region accuracy of a similarity function.

The paper plots the k-means region accuracies of F3 for the "Cohen" block
of WWW'05.  The reproduced series must show the paper's S1 claim: the
accuracy of link existence varies strongly across the value space, which
is exactly why region-based decisions beat a single threshold.
"""

from repro.experiments.figures import figure1_series
from repro.experiments.reporting import format_region_series


def test_figure1_region_accuracy(benchmark, www_context):
    points = benchmark.pedantic(
        lambda: figure1_series(www_context, function_name="F3",
                               method="kmeans", k=10, seed=0),
        rounds=1, iterations=1)

    print()
    print(format_region_series(
        points,
        title="Figure 1 — accuracy of link existence per k-means region "
              "(F3, Cohen, WWW'05-like)"))

    # Regions tile [0, 1].
    assert points[0].low == 0.0
    assert points[-1].high == 1.0
    # S1: accuracy varies substantially across regions.
    accuracies = [point.accuracy for point in points]
    assert max(accuracies) - min(accuracies) > 0.15
    # All accuracies are probabilities.
    assert all(0.0 <= accuracy <= 1.0 for accuracy in accuracies)


def test_figure1_equal_width_variant(benchmark, www_context):
    """The §IV-A option 1 variant (equal-width regions) for comparison."""
    points = benchmark.pedantic(
        lambda: figure1_series(www_context, function_name="F3",
                               method="equal_width", k=10, seed=0),
        rounds=1, iterations=1)
    print()
    print(format_region_series(
        points,
        title="Figure 1 variant — equal-width regions (F3, Cohen)"))
    assert len(points) == 10
    # Equal-width regions are often empty where similarity values never
    # fall — the paper's argument for k-means regions.
    assert any(point.n_training_pairs == 0 for point in points)
