"""ABL-TRN — ablation: training-set size (§V-A2 protocol choice).

The paper fixes the training fraction at 10 %; this sweep shows how the
technique degrades with less supervision and saturates with more.
Expected: performance is monotone-ish in the fraction with diminishing
returns, and 10 % sits near the saturated regime (the paper's implicit
claim that a *small* training set suffices).
"""

from repro.core.config import ResolverConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_config

FRACTIONS = (0.02, 0.05, 0.1, 0.2, 0.3)


def test_ablation_training_fraction(benchmark, www_context, bench_seeds):
    def run_all():
        results = {}
        for fraction in FRACTIONS:
            config = ResolverConfig(training_fraction=fraction)
            results[fraction] = run_config(
                www_context, config, bench_seeds,
                label=f"frac={fraction}").mean()
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    rows = [[f"{fraction:.0%}", report.fp, report.f1, report.rand]
            for fraction, report in results.items()]
    print(format_table(["training fraction", "Fp", "F", "Rand"], rows,
                       title="Ablation — training fraction (WWW'05-like, C10 setting)"))

    # More supervision never hurts much end-to-end...
    assert results[0.3].fp >= results[0.02].fp - 0.02
    # ...and the paper's 10 % already recovers most of the 30 % quality.
    assert results[0.1].fp >= results[0.3].fp - 0.05


def test_ablation_sampling_mode(benchmark, www_context, bench_seeds):
    """Pair-sampling vs the stricter document-sampling reading of §V-A2."""
    def run_all():
        results = {}
        for mode in ("pairs", "documents"):
            config = ResolverConfig(sampling_mode=mode)
            results[mode] = run_config(www_context, config, bench_seeds,
                                       label=mode).mean()
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    rows = [[mode, report.fp, report.f1, report.rand]
            for mode, report in results.items()]
    print(format_table(["sampling mode", "Fp", "F", "Rand"], rows,
                       title="Ablation — training sampling mode"))
    # Document sampling yields far fewer labeled pairs; it may lose some
    # quality but must stay in a working band.
    assert results["documents"].fp > 0.5
