"""ABL-CLU — ablation: clustering step (§IV-C design choice).

The paper deploys transitive closure and mentions correlation clustering
as the alternative; an average-link agglomerative baseline rounds out the
comparison.  Expected: all three are in the same band, with closure and
correlation clustering close (the combined graph is already near a union
of cliques).
"""

from repro.baselines import AgglomerativeBaseline
from repro.core.config import ResolverConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_baseline, run_config


def test_ablation_clustering(benchmark, www_context, bench_seeds):
    def run_all():
        results = {}
        results["transitive-closure"] = run_config(
            www_context, ResolverConfig(clusterer="transitive"),
            bench_seeds).mean()
        results["correlation"] = run_config(
            www_context, ResolverConfig(clusterer="correlation"),
            bench_seeds).mean()
        results["star"] = run_config(
            www_context, ResolverConfig(clusterer="star"),
            bench_seeds).mean()
        results["agglomerative-F8"] = run_baseline(
            www_context, AgglomerativeBaseline("F8"), bench_seeds).mean()
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    rows = [[label, report.fp, report.f1, report.rand]
            for label, report in results.items()]
    print(format_table(["clusterer", "Fp", "F", "Rand"], rows,
                       title="Ablation — clustering step (WWW'05-like)"))

    # All clusterers operate in a sane band.
    for label, report in results.items():
        assert report.fp > 0.5, (label, report.fp)
    # Closure and correlation clustering stay close on combined graphs.
    gap = abs(results["transitive-closure"].fp - results["correlation"].fp)
    assert gap < 0.12, results
