"""ABL-CMB — ablation: combination strategies (§IV-B + related work).

Compares the paper's best-graph selection and weighted averaging against
the classifier-combination families from the related work: majority /
weighted voting (fusion), dynamic classifier selection (Woods et al.) and
clustering-and-selection (Liu & Yuan), plus the trained/oracle single-
function references.
"""

from repro.baselines import (
    ClusteringSelectionBaseline,
    DynamicSelectionBaseline,
    MajorityVoteBaseline,
    OracleBestFunctionBaseline,
    TrainedBestFunctionBaseline,
    WeightedVoteBaseline,
)
from repro.core.config import table2_config
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_baseline, run_config

BASELINES = [
    TrainedBestFunctionBaseline(),
    MajorityVoteBaseline(),
    WeightedVoteBaseline(),
    DynamicSelectionBaseline(),
    ClusteringSelectionBaseline(),
    OracleBestFunctionBaseline(),
]


def test_ablation_combiners(benchmark, www_context, bench_seeds):
    def run_all():
        results = {}
        results["best-graph (C10)"] = run_config(
            www_context, table2_config("C10"), bench_seeds).mean()
        results["weighted-average (W)"] = run_config(
            www_context, table2_config("W"), bench_seeds).mean()
        for baseline in BASELINES:
            results[baseline.name] = run_baseline(
                www_context, baseline, bench_seeds).mean()
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    rows = [[label, report.fp, report.f1, report.rand]
            for label, report in results.items()]
    print(format_table(["combiner", "Fp", "F", "Rand"], rows,
                       title="Ablation — combination strategies (WWW'05-like)"))

    c10 = results["best-graph (C10)"].fp
    # The paper's combiner beats the fusion family on its datasets.
    assert c10 >= results["majority_vote"].fp - 0.02
    assert c10 >= results["weighted_vote"].fp - 0.02
    # It also beats the threshold-only single-function pick (I10 analogue).
    assert c10 > results["trained_best_function"].fp - 0.01
    # The oracle upper-bounds *single-threshold-function* strategies by
    # construction (it picks the test-best of exactly those candidates)...
    oracle = results["oracle_best_function"].fp
    assert results["trained_best_function"].fp <= oracle + 1e-9
    # ...and C10 beating the oracle is the strongest form of the paper's
    # claim: region-based criteria add expressiveness that no single
    # thresholded function possesses, even with oracle selection.
    assert c10 >= oracle - 0.05
