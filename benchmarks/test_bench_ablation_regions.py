"""ABL-REG — ablation: decision-criteria families (§IV-A design choice).

Runs the full ten-function best-graph resolver with each criteria family
alone and with the full battery, isolating where the paper's gain comes
from.  Expected: the mixed battery is at least as good as any single
family, and region-based criteria contribute over thresholds alone.
"""

from repro.core.config import ResolverConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_config

VARIANTS = {
    "threshold-only": ("threshold",),
    "equal-width-only": ("equal_width",),
    "kmeans-only": ("kmeans",),
    "full-battery": ("threshold", "equal_width", "kmeans"),
}


def test_ablation_region_criteria(benchmark, www_context, bench_seeds):
    def run_all():
        results = {}
        for label, criteria in VARIANTS.items():
            config = ResolverConfig(criteria=criteria)
            results[label] = run_config(www_context, config, bench_seeds,
                                        label=label).mean()
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    rows = [[label, report.fp, report.f1, report.rand]
            for label, report in results.items()]
    print(format_table(["criteria", "Fp", "F", "Rand"], rows,
                       title="Ablation — decision criteria families (WWW'05-like, C10 setting)"))

    full = results["full-battery"].fp
    # The full battery must not lose to any single family by more than
    # selection noise...
    for label, report in results.items():
        assert full >= report.fp - 0.02, (label, report.fp, full)
    # ...and at least one region family must add something over thresholds
    # (the paper's central claim).
    best_region = max(results["equal-width-only"].fp,
                      results["kmeans-only"].fp,
                      full)
    assert best_region > results["threshold-only"].fp - 0.005


def test_ablation_region_granularity(benchmark, www_context, bench_seeds):
    """Sweep the region count k (the paper's Fig. 1 uses ~10).

    Too few regions cannot express non-monotone accuracy structure; too
    many over-fit the small training sample.  The paper's k=10 should sit
    in the flat middle of the curve.
    """
    from repro.core.config import ResolverConfig

    def run_all():
        results = {}
        for k in (2, 5, 10, 20, 40):
            config = ResolverConfig(region_k=k)
            results[k] = run_config(www_context, config, bench_seeds,
                                    label=f"k={k}").mean()
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    rows = [[f"k={k}", report.fp, report.f1, report.rand]
            for k, report in results.items()]
    print(format_table(["regions", "Fp", "F", "Rand"], rows,
                       title="Ablation — region count k (WWW'05-like)"))

    scores = {k: report.fp for k, report in results.items()}
    # k=10 performs within noise of the best k in the sweep.
    assert scores[10] >= max(scores.values()) - 0.03, scores
