"""SCALING — corpus-size sweep over the streaming generator + resolution.

Every other benchmark runs on the 12-name paper fixture; this one sweeps
corpus size (~1k pages by default, 100k+ one environment variable away)
over synthesized scale corpora (``repro.corpus.datasets.scale_generator``:
independent per-name seeding, surname collisions, Zipfian lexicon) and
records, per size:

* **throughput-vs-N** — pages/second through the full streaming
  pipeline: regenerate block (O(1), ``generate_block``) → extract →
  quadratic similarity graphs → fit → evaluate, one block at a time;
* **per-stage seconds** — where that time goes as N grows;
* **peak-memory-vs-N** — tracemalloc peaks for streaming generation
  (asserted *bounded*: independent of total corpus size) and for the
  streaming resolution loop (sampled over the first
  ``REPRO_BENCH_SCALE_MEMORY_BLOCKS`` blocks — peaks are per-block, so
  the sample is exact for constant block size; the cap is recorded, not
  silent);
* **blocking-quality-vs-N** — the query-name blocker's reduction ratio
  computed analytically from block sizes (no pair materialization, so it
  covers the full corpus) plus measured reduction/completeness for the
  query-name and token blockers on a capped flat sample
  (``REPRO_BENCH_SCALE_BLOCKING_PAGES``; the token blocker materializes
  within-group pairs, which is quadratic — the cap is recorded);
* **quality-at-scale** — mean B-cubed F1 across blocks; the sweep raises
  the collision rate with size and the score must not collapse.

Each run appends a record to ``BENCH_scaling.json`` at the repo root
(same trajectory convention as ``BENCH_runtime.json``).

Scale knobs::

    REPRO_BENCH_SCALE_SIZES       approx total pages per sweep point
                                  (default "1000,3000,9000")
    REPRO_BENCH_SCALE_PPN         pages per name (default 20)
    REPRO_BENCH_SCALE_COLLISIONS  collision rate per sweep point, zipped
                                  with sizes (default "0.1,0.3,0.5";
                                  the last value repeats if short)
    REPRO_BENCH_SCALE_BLOCKING_PAGES  measured-blocking sample cap
                                  (default 1200)
    REPRO_BENCH_SCALE_MEMORY_BLOCKS   tracemalloc'd resolution blocks
                                  (default 6)

A 100k-page point is ``REPRO_BENCH_SCALE_SIZES=100000`` (expect minutes:
the quadratic in-block step dominates and the knobs trade block count
against block size).
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import pytest

from repro.blocking import QueryNameBlocker, TokenBlocker
from repro.core.config import ResolverConfig
from repro.core.model import ResolverModel
from repro.core.resolver import EntityResolver
from repro.corpus.datasets import scale_generator
from repro.extraction.pipeline import ExtractionPipeline
from repro.runtime.batch import batched_similarity_graphs
from repro.similarity.backends import default_backend
from repro.similarity.functions import default_functions

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_scaling.json"
CORPUS_SEED = 13
TRAINING_SEED = 0


def _int_list(value: str) -> list[int]:
    return [int(item) for item in value.split(",") if item.strip()]


def _float_list(value: str) -> list[float]:
    return [float(item) for item in value.split(",") if item.strip()]


def _sweep_points() -> list[tuple[int, float]]:
    """(approx total pages, collision rate) per sweep point."""
    sizes = _int_list(os.environ.get("REPRO_BENCH_SCALE_SIZES",
                                     "1000,3000,9000"))
    collisions = _float_list(os.environ.get("REPRO_BENCH_SCALE_COLLISIONS",
                                            "0.1,0.3,0.5"))
    if not collisions:
        collisions = [0.0]
    return [(size, collisions[min(index, len(collisions) - 1)])
            for index, size in enumerate(sizes)]


def _pairs_in(n: int) -> int:
    return n * (n - 1) // 2


def _measure_point(size: int, collision_rate: float, pages_per_name: int,
                   blocking_cap: int, memory_blocks: int) -> dict:
    """One sweep point: build, stream-resolve, and meter a scale corpus."""
    n_names = max(3, size // pages_per_name)
    generator, names = scale_generator(
        n_names, seed=CORPUS_SEED, pages_per_name=pages_per_name,
        collision_rate=collision_rate)
    pipeline = ExtractionPipeline.from_vocabulary(
        generator.vocabulary, query_names=names)
    config = ResolverConfig()
    resolver = EntityResolver(config)
    scorer = ResolverModel(config=config, blocks={})
    functions = default_functions()

    # Timed streaming pass: each block is regenerated in O(1) from
    # (seed, name), resolved, scored, and discarded — nothing from a
    # previous block survives, so memory stays flat while N grows.
    stage_seconds = {"generate": 0.0, "extract": 0.0, "graphs": 0.0,
                     "fit": 0.0, "evaluate": 0.0}
    bcubed_scores = []
    n_pages = 0
    pairs_scored = 0
    for name in names:
        started = time.perf_counter()
        block = generator.generate_block(name, CORPUS_SEED)
        stage_seconds["generate"] += time.perf_counter() - started

        started = time.perf_counter()
        features = pipeline.extract_block(block)
        stage_seconds["extract"] += time.perf_counter() - started

        started = time.perf_counter()
        graphs = batched_similarity_graphs(block, features, functions)
        stage_seconds["graphs"] += time.perf_counter() - started

        started = time.perf_counter()
        fitted = resolver.fit_block(block, graphs,
                                    training_seed=TRAINING_SEED)
        stage_seconds["fit"] += time.perf_counter() - started

        started = time.perf_counter()
        resolution = scorer.evaluate_fitted(fitted, block, graphs=graphs)
        stage_seconds["evaluate"] += time.perf_counter() - started

        bcubed_scores.append(resolution.report.bcubed_f1)
        n_pages += len(block.pages)
        pairs_scored += _pairs_in(len(block.pages)) * len(functions)
    total_seconds = sum(stage_seconds.values())
    stage_seconds["total"] = total_seconds

    # Peak memory of streaming *generation* over the full corpus — this
    # is the bounded-memory claim: one block alive at a time, so the
    # peak must not grow with N.
    tracemalloc.start()
    for block in generator.iter_blocks(names, CORPUS_SEED):
        pass
    _, generation_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # Peak memory of the streaming resolution loop, sampled over the
    # first `memory_blocks` blocks (peaks are per-block; constant block
    # size makes the sample exact — and the cap is recorded below).
    sampled = names[:min(memory_blocks, len(names))]
    tracemalloc.start()
    for name in sampled:
        block = generator.generate_block(name, CORPUS_SEED)
        features = pipeline.extract_block(block)
        graphs = batched_similarity_graphs(block, features, functions)
        fitted = resolver.fit_block(block, graphs,
                                    training_seed=TRAINING_SEED)
        scorer.evaluate_fitted(fitted, block, graphs=graphs)
    _, resolution_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # Blocking quality.  The query-name blocker's reduction ratio is
    # analytic (uniform block sizes: kept pairs / all pairs), so the
    # full-corpus curve costs nothing; measured blockers run on a capped
    # flat sample because the token blocker materializes within-group
    # pairs (quadratic).
    analytic_reduction = 1.0 - (
        n_names * _pairs_in(pages_per_name) / _pairs_in(n_pages))
    sample_names = names[:max(1, min(len(names),
                                     blocking_cap // pages_per_name))]
    sample_pages = [page for name in sample_names
                    for page in generator.generate_block(name,
                                                         CORPUS_SEED).pages]
    query_name_blocking = QueryNameBlocker().block(sample_pages)
    token_blocking = TokenBlocker().block(sample_pages)

    return {
        "n_names": n_names,
        "n_pages": n_pages,
        "pages_per_name": pages_per_name,
        "collision_rate": collision_rate,
        "stage_seconds": stage_seconds,
        "throughput_pages_per_second": n_pages / total_seconds,
        "pairs_scored": pairs_scored,
        "generation_stream_peak_bytes": generation_peak,
        "resolution_peak_bytes": resolution_peak,
        "resolution_peak_blocks_sampled": len(sampled),
        "bcubed_f1_mean": sum(bcubed_scores) / len(bcubed_scores),
        "bcubed_f1_min": min(bcubed_scores),
        "blocking": {
            "analytic_reduction_ratio": analytic_reduction,
            "measured_pages": len(sample_pages),
            "measured_page_cap": blocking_cap,
            "query_name": {
                "reduction_ratio": query_name_blocking.reduction_ratio(),
                "pair_completeness": query_name_blocking.pair_completeness(),
            },
            "token": {
                "reduction_ratio": token_blocking.reduction_ratio(),
                "pair_completeness": token_blocking.pair_completeness(),
            },
        },
    }


@pytest.fixture(scope="module")
def scaling_record():
    """Run the sweep once; every test asserts on the record."""
    pages_per_name = int(os.environ.get("REPRO_BENCH_SCALE_PPN", "20"))
    blocking_cap = int(os.environ.get("REPRO_BENCH_SCALE_BLOCKING_PAGES",
                                      "1200"))
    memory_blocks = int(os.environ.get("REPRO_BENCH_SCALE_MEMORY_BLOCKS",
                                       "6"))
    record = {
        "pages_per_name": pages_per_name,
        "corpus_seed": CORPUS_SEED,
        "training_seed": TRAINING_SEED,
        "backend": default_backend(),
        "sizes": [
            _measure_point(size, collision_rate, pages_per_name,
                           blocking_cap, memory_blocks)
            for size, collision_rate in _sweep_points()
        ],
    }
    _append_trajectory(record)
    return record


def _append_trajectory(record: dict) -> None:
    payload = {"benchmark": "scaling", "runs": []}
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
            if isinstance(existing.get("runs"), list):
                payload["runs"] = existing["runs"]
        except (json.JSONDecodeError, OSError):
            pass  # start a fresh trajectory over a corrupt file
    payload["runs"].append(record)
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


class TestScalingBench:
    def test_sweep_covers_three_sizes(self, scaling_record):
        """The default sweep records ≥ 3 strictly growing corpus sizes."""
        sizes = scaling_record["sizes"]
        assert len(sizes) >= 3
        page_counts = [entry["n_pages"] for entry in sizes]
        assert page_counts == sorted(page_counts)
        assert len(set(page_counts)) == len(page_counts)

    def test_throughput_and_stages_recorded(self, scaling_record):
        for entry in scaling_record["sizes"]:
            assert entry["throughput_pages_per_second"] > 0.0
            for stage in ("generate", "extract", "graphs", "fit",
                          "evaluate", "total"):
                assert entry["stage_seconds"][stage] > 0.0, stage
            assert entry["pairs_scored"] > 0

    def test_streaming_generation_memory_is_bounded(self, scaling_record):
        """The tentpole claim: streaming generation's peak memory is
        O(one block) — independent of total corpus size.  Allow 2.5x
        slack for allocator noise; an O(N) regression would blow far
        past it (the largest sweep point is ≥ 9x the smallest)."""
        peaks = [entry["generation_stream_peak_bytes"]
                 for entry in scaling_record["sizes"]]
        assert max(peaks) <= 2.5 * min(peaks), peaks
        resolution_peaks = [entry["resolution_peak_bytes"]
                            for entry in scaling_record["sizes"]]
        assert max(resolution_peaks) <= 2.5 * min(resolution_peaks), \
            resolution_peaks

    def test_blocking_quality_curves(self, scaling_record):
        """Query-name blocking stays lossless at every size; its analytic
        reduction ratio grows with N (in-block pairs shrink as a fraction
        of all pairs); the token blocker's measured trade-off is sane."""
        reductions = []
        for entry in scaling_record["sizes"]:
            blocking = entry["blocking"]
            assert blocking["query_name"]["pair_completeness"] == 1.0
            assert blocking["measured_pages"] > 0
            assert 0.0 <= blocking["token"]["reduction_ratio"] <= 1.0
            assert 0.0 <= blocking["token"]["pair_completeness"] <= 1.0
            reductions.append(blocking["analytic_reduction_ratio"])
        assert reductions == sorted(reductions)
        assert all(0.0 <= ratio < 1.0 for ratio in reductions)

    def test_quality_does_not_collapse_at_scale(self, scaling_record):
        """B-cubed F1 must hold up as corpus size and collision rate rise
        together.  The floor is gated on block size the way the runtime
        bench gates its speed floors: tiny smoke blocks (CI's capped
        sweep) give the clusterer little to work with."""
        means = [entry["bcubed_f1_mean"]
                 for entry in scaling_record["sizes"]]
        assert all(score > 0.0 for score in means)
        assert min(means) >= 0.55 * max(means), means
        if scaling_record["pages_per_name"] >= 16:
            assert min(means) >= 0.5, means

    def test_trajectory_file_is_valid(self, scaling_record):
        payload = json.loads(BENCH_PATH.read_text())
        assert payload["benchmark"] == "scaling"
        assert payload["runs"], "no runs recorded"
        last = payload["runs"][-1]
        assert last["pages_per_name"] == scaling_record["pages_per_name"]
        assert len(last["sizes"]) == len(scaling_record["sizes"])
        for entry in last["sizes"]:
            for key in ("n_pages", "throughput_pages_per_second",
                        "stage_seconds", "generation_stream_peak_bytes",
                        "resolution_peak_bytes", "bcubed_f1_mean",
                        "blocking"):
                assert key in entry, key
