"""SERVING — the concurrent engine vs serial request-path serving.

Drives a :class:`~repro.serving.engine.ServingEngine` with closed-loop
load-generator threads (:mod:`repro.serving.loadgen`) and records three
properties, matching the engine's contract:

1. **Determinism** — every engine run records an admission journal, and
   replaying it through a plain serial
   :class:`~repro.pipeline.session.ResolutionSession` must reproduce
   assignments, final partitions, LRU order and counters **bit for
   bit** (:func:`~repro.serving.replay.verify_serial_equivalence`).
   Asserted at every scale, for every run, including the swap run.
2. **Throughput** — multi-threaded serving must beat the single-thread
   closed loop on sustained QPS at the default scale.  Pure-Python
   threads share the GIL, so the win comes from *request coalescing*:
   queued same-name requests are scored in one masked sweep with
   per-page inputs prepared once per batch (~1.2-1.3x algorithmic
   saving, ``docs/serving.md``), which singleton serving cannot access.
   The QPS comparison therefore runs the coalescing scenario in its
   pure form: one deep hot name (``REPRO_BENCH_SERVING_PAGES``, default
   240) hammered by every worker at once — the stampede a trending
   query produces.  Requests must be scoring-bound for the margin to
   clear host noise, so the assertion gates at >= 100 pages; smaller
   (smoke) scales record the ratio only.  Runs are interleaved
   best-of-``REPRO_BENCH_SERVING_REPS`` with the GC paused to
   decorrelate host noise, and the interpreter switch interval is
   lowered to 0.5ms during load so follower threads can actually queue
   (the 5ms default lets one worker burn a whole batch per time slice).
3. **Hot swap under traffic** — a model swap injected mid-run over
   mixed multi-name traffic must lose zero requests, stall admissions
   no longer than a pointer move, and keep both generations' journals
   serially replayable.

Each run appends a ``"scenario": "serving"`` record to
``BENCH_runtime.json``; ``docs/performance.md`` documents the format.
"""

from __future__ import annotations

import gc
import json
import os
import sys
from pathlib import Path

import pytest

from repro.core.config import ResolverConfig
from repro.core.resolver import EntityResolver
from repro.corpus.datasets import www05_like
from repro.corpus.documents import DocumentCollection
from repro.corpus.vocabulary import build_vocabulary
from repro.extraction.pipeline import ExtractionPipeline
from repro.serving import (
    LoadRequest,
    ServingEngine,
    run_load,
    verify_serial_equivalence,
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_runtime.json"

#: The QPS comparison uses one deep block: scaling is about same-name
#: contention (stampedes that coalesce), not about fanning out names.
#: The side names carry the mixed determinism + hot-swap runs.
HOT_NAME = "William Cohen"
SIDE_NAMES = ["Adam Cheyer", "Lynn Voss"]
SIDE_PAGES = 30
LOAD_SWITCH_INTERVAL = 0.0005


def _serving_pages() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVING_PAGES", "240"))


def _serving_reps() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVING_REPS", "3"))


def _serving_threads() -> int:
    return int(os.environ.get("REPRO_BENCH_SERVING_THREADS", "12"))


@pytest.fixture(scope="module")
def serving_record():
    """Run every serving scenario once; the tests assert on the record."""
    pages = _serving_pages()
    reps = _serving_reps()
    max_threads = max(4, _serving_threads())
    mid_threads = max(2, max_threads - 4)

    hot_dataset = www05_like(seed=11, pages_per_name=pages,
                             names=[HOT_NAME])
    side_dataset = www05_like(seed=12, pages_per_name=SIDE_PAGES,
                              names=SIDE_NAMES)
    dataset = DocumentCollection(
        name="serving-bench",
        collections=[*hot_dataset.collections, *side_dataset.collections])
    vocabulary = build_vocabulary(seed=7)
    pipeline = ExtractionPipeline.from_vocabulary(
        vocabulary, query_names=[HOT_NAME, *SIDE_NAMES])
    model = EntityResolver(ResolverConfig()).fit(dataset, training_seed=0,
                                                 pipeline=pipeline)
    swap_model = EntityResolver(ResolverConfig()).fit(dataset,
                                                      training_seed=1,
                                                      pipeline=pipeline)
    features = dict(pipeline.extract_block(hot_dataset.by_name(HOT_NAME)))
    for name in SIDE_NAMES:
        features.update(pipeline.extract_block(side_dataset.by_name(name)))

    def _request(page) -> LoadRequest:
        return LoadRequest(pages=[page],
                           features={page.doc_id: features[page.doc_id]})

    def _warm_request(block_pages) -> LoadRequest:
        return LoadRequest(
            pages=list(block_pages),
            features={p.doc_id: features[p.doc_id] for p in block_pages})

    hot_pages = list(hot_dataset.by_name(HOT_NAME).pages)
    warm = max(1, pages // 3)
    hot_warm = [_warm_request(hot_pages[:warm])]
    hot_stream = [_request(page) for page in hot_pages[warm:]]

    side_warm = max(1, SIDE_PAGES // 3)
    mixed_warm = list(hot_warm)
    mixed_stream = list(hot_stream)
    for name in SIDE_NAMES:
        block_pages = list(side_dataset.by_name(name).pages)
        mixed_warm.append(_warm_request(block_pages[:side_warm]))
        for offset, page in enumerate(block_pages[side_warm:]):
            # Splice side-name traffic through the hot stream so the
            # mixed runs exercise cross-lane concurrency.
            slot = min(len(mixed_stream), (offset + 1) * 7)
            mixed_stream.insert(slot, _request(page))

    def _run(threads: int, batch_window: float, warm_requests,
             stream_requests, swap_plan=None) -> tuple[dict, ServingEngine]:
        engine = ServingEngine(model, pipeline=pipeline, max_batch=16,
                               batch_window=batch_window,
                               record_journal=True)
        for request in warm_requests:  # bootstraps outside the timed loop
            engine.resolve(request.pages, features=request.features)
        report = run_load(engine, stream_requests, threads=threads,
                          swap_plan=dict(swap_plan) if swap_plan else None)
        replay = verify_serial_equivalence(engine)
        result = report.to_dict()
        result["batch_window"] = batch_window
        result["engine"] = engine.stats.to_dict()
        result["replay_identical"] = replay["identical"]
        result["replay_units"] = replay["units"]
        result["replay_versions"] = replay["versions"]
        result["replay_diffs"] = replay["diffs"][:10]
        return result, engine

    configs = {
        "threads_1": (1, 0.0),
        f"threads_{mid_threads}": (mid_threads, 0.002),
        f"threads_{max_threads}": (max_threads, 0.002),
    }
    runs: dict[str, dict] = {}
    switch_before = sys.getswitchinterval()
    gc_was_enabled = gc.isenabled()
    sys.setswitchinterval(LOAD_SWITCH_INTERVAL)
    gc.disable()
    try:
        # Interleave reps so host noise hits every config alike; keep
        # each config's best run (noise only ever slows a run down).
        for _ in range(reps):
            for label, (threads, window) in configs.items():
                result, _engine = _run(threads, window, hot_warm,
                                       hot_stream)
                if (label not in runs
                        or result["qps"] > runs[label]["qps"]):
                    runs[label] = result

        mixed_result, _mixed_engine = _run(4, 0.002, mixed_warm,
                                           mixed_stream)
        swap_at = max(1, len(mixed_stream) // 2)
        swap_result, swap_engine = _run(
            4, 0.002, mixed_warm, mixed_stream,
            swap_plan={swap_at: swap_model})
    finally:
        sys.setswitchinterval(switch_before)
        if gc_was_enabled:
            gc.enable()

    single = runs["threads_1"]
    multi_label, multi = max(
        ((label, run) for label, run in runs.items() if label != "threads_1"),
        key=lambda item: item[1]["qps"])
    record = {
        "scenario": "serving",
        "pages_per_name": pages,
        "side_names": len(SIDE_NAMES),
        "side_pages_per_name": SIDE_PAGES,
        "reps": reps,
        "warm_pages": warm,
        "stream_requests": len(hot_stream),
        "mixed_stream_requests": len(mixed_stream),
        "load_switch_interval": LOAD_SWITCH_INTERVAL,
        "runs": runs,
        "single_thread_qps": single["qps"],
        "best_multi_thread_qps": multi["qps"],
        "best_multi_thread_config": multi_label,
        "multi_over_single_qps_ratio": (
            multi["qps"] / single["qps"] if single["qps"] else 0.0),
        "mixed": mixed_result,
        "swap": {
            **swap_result,
            "swap_at_request": swap_at,
            "swaps": swap_engine.stats.swaps,
            "swap_stall_seconds": swap_engine.stats.swap_stall_seconds,
            "final_version": swap_engine.snapshot.version,
        },
    }
    _append_trajectory(record)
    return record


def _append_trajectory(record: dict) -> None:
    payload = {"benchmark": "runtime", "runs": []}
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
            if isinstance(existing.get("runs"), list):
                payload["runs"] = existing["runs"]
        except (json.JSONDecodeError, OSError):
            pass  # start a fresh trajectory over a corrupt file
    payload["runs"].append(record)
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


class TestServingBench:
    def test_every_run_is_bit_identical_to_serial_replay(self,
                                                         serving_record):
        """Criterion (a): concurrency must never change results — every
        load run's journal replays bit-identically through a serial
        session, at any scale, including mixed traffic and mid-swap."""
        for label, run in serving_record["runs"].items():
            assert run["replay_identical"], (label, run["replay_diffs"])
            assert run["failed"] == 0, label
        assert serving_record["mixed"]["replay_identical"], \
            serving_record["mixed"]["replay_diffs"]
        assert serving_record["mixed"]["failed"] == 0
        assert serving_record["swap"]["replay_identical"], \
            serving_record["swap"]["replay_diffs"]

    def test_multi_thread_qps_beats_single_thread(self, serving_record):
        """Criterion (b): the concurrent configuration must win on
        sustained QPS at the default scale.  The win is algorithmic
        (coalesced batches amortize per-page preparation), so it needs
        scoring-bound requests: smoke-scale runs record the ratio only."""
        assert serving_record["single_thread_qps"] > 0.0
        assert serving_record["best_multi_thread_qps"] > 0.0
        if serving_record["pages_per_name"] >= 100:
            assert (serving_record["best_multi_thread_qps"]
                    > serving_record["single_thread_qps"]), serving_record
            multi = serving_record["runs"][
                serving_record["best_multi_thread_config"]]
            assert multi["engine"]["coalesced_batches"] > 0, multi

    def test_hot_swap_loses_no_requests(self, serving_record):
        """Criterion (c): a swap under live traffic completes every
        request, serves both generations, and stalls admissions for
        well under a millisecond."""
        swap = serving_record["swap"]
        assert swap["failed"] == 0
        assert swap["swaps"] == 1
        assert swap["final_version"] == 2
        assert swap["replay_versions"] == [1, 2]
        assert swap["replay_identical"], swap["replay_diffs"]
        assert 0.0 <= swap["swap_stall_seconds"] < 0.1

    def test_latency_percentiles_are_ordered(self, serving_record):
        for label, run in serving_record["runs"].items():
            assert (0.0 < run["p50_request_seconds"]
                    <= run["p95_request_seconds"]
                    <= run["p99_request_seconds"]), label

    def test_trajectory_file_records_serving_scenario(self, serving_record):
        payload = json.loads(BENCH_PATH.read_text())
        assert payload["benchmark"] == "runtime"
        serving = [run for run in payload["runs"]
                   if run.get("scenario") == "serving"]
        assert serving, "no serving scenario recorded"
        last = serving[-1]
        for key in ("single_thread_qps", "best_multi_thread_qps",
                    "multi_over_single_qps_ratio", "runs", "swap"):
            assert key in last, key
        for run in last["runs"].values():
            for key in ("qps", "p50_request_seconds", "p95_request_seconds",
                        "p99_request_seconds", "replay_identical"):
                assert key in run, key
            assert "coalesced_batches" in run["engine"]
        assert last["pages_per_name"] == serving_record["pages_per_name"]
