"""TAB3 — Table III: per-name Fp for F1–F10, C10 and W on WWW'05.

The paper's per-name table supports two observations: every function
wins somewhere (S5 — e.g. F8 is best for Voss but F6 for Mulford), and
the combined C10 column is at or near the per-name maximum.
"""

from repro.experiments.reporting import format_table
from repro.experiments.tables import table3


def test_table3_per_name_fp(benchmark, www_context, bench_seeds):
    table = benchmark.pedantic(
        lambda: table3(www_context, bench_seeds), rounds=1, iterations=1)

    print()
    headers = ["name"] + list(table.columns)
    rows = []
    for name in table.names():
        rows.append([name] + [table.get(name, column)
                              for column in table.columns])
    print(format_table(headers, rows,
                       title="Table III — Fp measure per name (WWW'05-like)"))

    winners = table.best_function_per_name()
    print(f"\nbest single function per name: {winners}")

    # S5: no single function is best for every name.
    assert len(set(winners.values())) >= 2, winners

    # C10 tracks the best single function per name: on average the gap to
    # the per-name best single function is small, and C10 beats the
    # per-name *average* function comfortably.
    gaps = []
    margins = []
    for name in table.names():
        function_scores = [table.get(name, column) for column in table.columns
                           if column.startswith("F")]
        best_single = max(function_scores)
        average_single = sum(function_scores) / len(function_scores)
        c10 = table.get(name, "C10")
        gaps.append(best_single - c10)
        margins.append(c10 - average_single)
    assert sum(gaps) / len(gaps) < 0.08, gaps
    assert sum(margins) / len(margins) > 0.0, margins
